package sql

import (
	"strings"
	"testing"

	"repro/internal/datum"
)

func mustSelect(t *testing.T, q string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *SelectStmt", q, stmt)
	}
	return sel
}

func TestParseSimpleSelect(t *testing.T) {
	sel := mustSelect(t, "SELECT name, sal FROM Emp WHERE sal > 100 ORDER BY sal DESC LIMIT 10")
	if len(sel.Select) != 2 {
		t.Fatalf("select list len %d", len(sel.Select))
	}
	if sel.Where == nil {
		t.Fatal("missing WHERE")
	}
	be, ok := sel.Where.(*BinExpr)
	if !ok || be.Op != OpGt {
		t.Fatalf("WHERE = %v", sel.Where)
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Fatal("ORDER BY DESC missing")
	}
	if sel.Limit == nil || *sel.Limit != 10 {
		t.Fatal("LIMIT missing")
	}
}

func TestParseStarAndTableStar(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM t")
	if !sel.Select[0].Star {
		t.Error("* not parsed")
	}
	sel = mustSelect(t, "SELECT e.* FROM Emp e")
	if sel.Select[0].TableStar != "e" {
		t.Error("e.* not parsed")
	}
}

func TestParseAliases(t *testing.T) {
	sel := mustSelect(t, "SELECT e.sal AS salary, e.did dept FROM Emp AS e, Dept d")
	if sel.Select[0].Alias != "salary" || sel.Select[1].Alias != "dept" {
		t.Error("column aliases not parsed")
	}
	tn := sel.From[0].(*TableName)
	if tn.Binding() != "e" {
		t.Errorf("binding = %q", tn.Binding())
	}
	tn2 := sel.From[1].(*TableName)
	if tn2.Binding() != "d" || tn2.Name != "Dept" {
		t.Error("implicit alias not parsed")
	}
	noAlias := &TableName{Name: "X"}
	if noAlias.Binding() != "X" {
		t.Error("Binding without alias should be table name")
	}
}

func TestParseJoins(t *testing.T) {
	sel := mustSelect(t, `SELECT * FROM A JOIN B ON A.x = B.x LEFT OUTER JOIN C ON B.y = C.y`)
	j, ok := sel.From[0].(*JoinExpr)
	if !ok || j.Kind != JoinLeftOuter {
		t.Fatalf("outer join = %#v", sel.From[0])
	}
	inner, ok := j.Left.(*JoinExpr)
	if !ok || inner.Kind != JoinInner || inner.On == nil {
		t.Fatal("inner join not nested correctly")
	}
	if j.Kind.String() != "LEFT OUTER JOIN" {
		t.Error("JoinKind.String")
	}
}

func TestParseJoinVariants(t *testing.T) {
	for q, want := range map[string]JoinKind{
		"SELECT * FROM A INNER JOIN B ON A.x=B.x": JoinInner,
		"SELECT * FROM A LEFT JOIN B ON A.x=B.x":  JoinLeftOuter,
		"SELECT * FROM A RIGHT JOIN B ON A.x=B.x": JoinRightOuter,
		"SELECT * FROM A FULL JOIN B ON A.x=B.x":  JoinFullOuter,
		"SELECT * FROM A CROSS JOIN B":            JoinCross,
	} {
		sel := mustSelect(t, q)
		j := sel.From[0].(*JoinExpr)
		if j.Kind != want {
			t.Errorf("%q: kind %v, want %v", q, j.Kind, want)
		}
	}
}

func TestParseGroupByHaving(t *testing.T) {
	sel := mustSelect(t, `SELECT did, COUNT(*), AVG(sal) FROM Emp GROUP BY did HAVING COUNT(*) > 5`)
	if len(sel.GroupBy) != 1 {
		t.Fatal("GROUP BY missing")
	}
	if sel.Having == nil {
		t.Fatal("HAVING missing")
	}
	fc := sel.Select[1].Expr.(*FuncCall)
	if !fc.Star || fc.Name != "COUNT" || !fc.IsAggregate() {
		t.Error("COUNT(*) not parsed")
	}
	avg := sel.Select[2].Expr.(*FuncCall)
	if avg.Name != "AVG" || len(avg.Args) != 1 {
		t.Error("AVG(sal) not parsed")
	}
}

func TestParseDistinct(t *testing.T) {
	sel := mustSelect(t, "SELECT DISTINCT did FROM Emp")
	if !sel.Distinct {
		t.Error("DISTINCT not parsed")
	}
	sel = mustSelect(t, "SELECT COUNT(DISTINCT did) FROM Emp")
	fc := sel.Select[0].Expr.(*FuncCall)
	if !fc.Distinct {
		t.Error("COUNT(DISTINCT) not parsed")
	}
}

func TestParseNestedSubqueries(t *testing.T) {
	// The paper's §4.2.2 example.
	q := `SELECT Emp.Name FROM Emp WHERE Emp.Dept_no IN
	      (SELECT Dept.Dept_no FROM Dept WHERE Dept.Loc = 'Denver' AND Emp.Emp_no = Dept.Mgr)`
	sel := mustSelect(t, q)
	in, ok := sel.Where.(*InExpr)
	if !ok || in.Sub == nil {
		t.Fatalf("WHERE = %v", sel.Where)
	}
	if in.Sub.Where == nil {
		t.Fatal("subquery WHERE missing")
	}
}

func TestParseExistsAndScalarSubquery(t *testing.T) {
	sel := mustSelect(t, `SELECT name FROM Dept WHERE EXISTS (SELECT 1 FROM Emp WHERE Emp.did = Dept.did)`)
	if _, ok := sel.Where.(*ExistsExpr); !ok {
		t.Fatalf("EXISTS not parsed: %v", sel.Where)
	}
	sel = mustSelect(t, `SELECT name FROM Dept WHERE num_mach >= (SELECT COUNT(*) FROM Emp WHERE Dept.name = Emp.dname)`)
	be := sel.Where.(*BinExpr)
	if _, ok := be.R.(*SubqueryExpr); !ok {
		t.Fatalf("scalar subquery not parsed: %v", be.R)
	}
}

func TestParseInListBetweenIsNull(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM t WHERE a IN (1, 2, 3) AND b NOT IN (4) AND c BETWEEN 1 AND 9 AND d IS NOT NULL AND e IS NULL")
	s := sel.Where.String()
	for _, frag := range []string{"IN (1, 2, 3)", "NOT IN (4)", "BETWEEN 1 AND 9", "IS NOT NULL", "IS NULL"} {
		if !strings.Contains(s, frag) {
			t.Errorf("WHERE %q missing %q", s, frag)
		}
	}
}

func TestParseNotBetweenAndLike(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM t WHERE a NOT BETWEEN 1 AND 2 AND b LIKE 'x%' AND c NOT LIKE 'y%'")
	s := sel.Where.String()
	if !strings.Contains(s, "NOT BETWEEN") || !strings.Contains(s, "LIKE") {
		t.Errorf("WHERE = %q", s)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT 1 + 2 * 3 - 4 / 2 FROM t")
	if got := sel.Select[0].Expr.String(); got != "((1 + (2 * 3)) - (4 / 2))" {
		t.Errorf("precedence wrong: %s", got)
	}
	sel = mustSelect(t, "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
	got := sel.Where.String()
	if got != "((a = 1) OR ((b = 2) AND (c = 3)))" {
		t.Errorf("bool precedence wrong: %s", got)
	}
}

func TestParseUnaryMinus(t *testing.T) {
	sel := mustSelect(t, "SELECT -5, -2.5, -x FROM t")
	if sel.Select[0].Expr.(*Lit).Val.Int() != -5 {
		t.Error("-5 not folded")
	}
	if sel.Select[1].Expr.(*Lit).Val.Float() != -2.5 {
		t.Error("-2.5 not folded")
	}
	if _, ok := sel.Select[2].Expr.(*NegExpr); !ok {
		t.Error("-x should be NegExpr")
	}
}

func TestParseLiterals(t *testing.T) {
	sel := mustSelect(t, "SELECT NULL, TRUE, FALSE FROM t")
	if !sel.Select[0].Expr.(*Lit).Val.IsNull() {
		t.Error("NULL literal")
	}
	if !sel.Select[1].Expr.(*Lit).Val.Bool() {
		t.Error("TRUE literal")
	}
	if sel.Select[2].Expr.(*Lit).Val.Bool() {
		t.Error("FALSE literal")
	}
}

func TestParseDerivedTable(t *testing.T) {
	sel := mustSelect(t, "SELECT v.a FROM (SELECT a FROM t) AS v")
	st, ok := sel.From[0].(*SubqueryTable)
	if !ok || st.Alias != "v" {
		t.Fatalf("derived table = %#v", sel.From[0])
	}
	if _, err := Parse("SELECT * FROM (SELECT a FROM t)"); err == nil {
		t.Error("derived table without alias should fail")
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE Emp (eid INT NOT NULL, name VARCHAR(30), sal FLOAT, active BOOLEAN, PRIMARY KEY (eid))`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if ct.Name != "Emp" || len(ct.Cols) != 4 {
		t.Fatalf("cols = %v", ct.Cols)
	}
	if ct.Cols[0].Kind != datum.KindInt || !ct.Cols[0].NotNull {
		t.Error("eid def wrong")
	}
	if ct.Cols[1].Kind != datum.KindString {
		t.Error("name def wrong")
	}
	if ct.Cols[2].Kind != datum.KindFloat || ct.Cols[3].Kind != datum.KindBool {
		t.Error("sal/active def wrong")
	}
	if len(ct.PrimaryKey) != 1 || ct.PrimaryKey[0] != "eid" {
		t.Error("primary key wrong")
	}
}

func TestParseCreateIndex(t *testing.T) {
	stmt, err := Parse("CREATE UNIQUE CLUSTERED INDEX emp_pk ON Emp (eid)")
	if err != nil {
		t.Fatal(err)
	}
	ci := stmt.(*CreateIndexStmt)
	if !ci.Unique || !ci.Clustered || ci.Table != "Emp" || len(ci.Cols) != 1 {
		t.Errorf("index stmt = %+v", ci)
	}
	stmt, err = Parse("CREATE INDEX i2 ON t (a, b)")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.(*CreateIndexStmt).Cols) != 2 {
		t.Error("multi-col index")
	}
}

func TestParseCreateView(t *testing.T) {
	stmt, err := Parse("CREATE VIEW v AS SELECT a FROM t WHERE a > 1")
	if err != nil {
		t.Fatal(err)
	}
	cv := stmt.(*CreateViewStmt)
	if cv.Materialized || cv.Name != "v" || cv.Select == nil {
		t.Errorf("view stmt = %+v", cv)
	}
	if !strings.HasPrefix(cv.SQL, "SELECT") {
		t.Errorf("view SQL = %q", cv.SQL)
	}
	stmt, err = Parse("CREATE MATERIALIZED VIEW mv AS SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.(*CreateViewStmt).Materialized {
		t.Error("materialized flag")
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := Parse("INSERT INTO t VALUES (1, 'a'), (2, NULL)")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if ins.Table != "t" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 2 {
		t.Errorf("insert = %+v", ins)
	}
}

func TestParseAnalyzeExplain(t *testing.T) {
	stmt, err := Parse("ANALYZE Emp")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*AnalyzeStmt).Table != "Emp" {
		t.Error("analyze table")
	}
	stmt, err = Parse("ANALYZE")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*AnalyzeStmt).Table != "" {
		t.Error("analyze all")
	}
	stmt, err = Parse("EXPLAIN SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stmt.(*ExplainStmt).Stmt.(*SelectStmt); !ok {
		t.Error("explain select")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC 1",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t GROUP",
		"SELECT * FROM t ORDER sal",
		"SELECT * FROM t LIMIT x",
		"SELECT * FROM t LIMIT -1",
		"SELECT * FROM A JOIN B",
		"CREATE TABLE t",
		"CREATE TABLE t (a WHATEVER)",
		"CREATE UNIQUE TABLE t (a INT)",
		"CREATE INDEX i ON t",
		"INSERT INTO t (1)",
		"SELECT 1 2",
		"SELECT (1",
		"SELECT * FROM t WHERE a IN (SELECT b FROM s",
		"SELECT * FROM t; SELECT 2",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParseSelectHelper(t *testing.T) {
	if _, err := ParseSelect("SELECT 1"); err != nil {
		t.Error(err)
	}
	if _, err := ParseSelect("ANALYZE"); err == nil {
		t.Error("ParseSelect on non-select should fail")
	}
	if _, err := ParseSelect("SELEC"); err == nil {
		t.Error("ParseSelect on garbage should fail")
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	if _, err := Parse("SELECT 1;"); err != nil {
		t.Error(err)
	}
}

func TestExprStrings(t *testing.T) {
	sel := mustSelect(t, "SELECT COUNT(DISTINCT a), SUM(b + 1) FROM t WHERE NOT (a = 1) AND EXISTS (SELECT 1 FROM s) AND x IN (SELECT y FROM s)")
	if got := sel.Select[0].Expr.String(); got != "COUNT(DISTINCT a)" {
		t.Errorf("String = %q", got)
	}
	s := sel.Where.String()
	for _, frag := range []string{"NOT", "EXISTS (<subquery>)", "IN (<subquery>)"} {
		if !strings.Contains(s, frag) {
			t.Errorf("%q missing %q", s, frag)
		}
	}
}

func TestParsePaperMagicQuery(t *testing.T) {
	// The §4.3 example query.
	q := `SELECT E.eid, E.sal FROM Emp E, Dept D, DepAvgSal V
	      WHERE E.did = D.did AND E.did = V.did
	      AND E.age < 30 AND D.budget > 100 AND E.sal > V.avgsal`
	sel := mustSelect(t, q)
	if len(sel.From) != 3 {
		t.Fatalf("FROM items = %d", len(sel.From))
	}
}

func TestParseUnion(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t UNION ALL SELECT b FROM s UNION SELECT c FROM u ORDER BY a LIMIT 5")
	if len(sel.Union) != 2 {
		t.Fatalf("union arms = %d", len(sel.Union))
	}
	if !sel.Union[0].All || sel.Union[1].All {
		t.Error("ALL flags wrong")
	}
	if len(sel.OrderBy) != 1 || sel.Limit == nil {
		t.Error("ORDER BY/LIMIT should attach to the whole union")
	}
	if len(sel.Union[0].Stmt.OrderBy) != 0 {
		t.Error("arms must not absorb the suffix")
	}
}

func TestParseCubeRollup(t *testing.T) {
	sel := mustSelect(t, "SELECT a, b, COUNT(*) FROM t GROUP BY CUBE (a, b)")
	if sel.Grouping != GroupCube || len(sel.GroupBy) != 2 {
		t.Errorf("cube parse: mode %v cols %d", sel.Grouping, len(sel.GroupBy))
	}
	sel = mustSelect(t, "SELECT a, COUNT(*) FROM t GROUP BY ROLLUP (a)")
	if sel.Grouping != GroupRollup {
		t.Error("rollup parse")
	}
	sel = mustSelect(t, "SELECT a, COUNT(*) FROM t GROUP BY a")
	if sel.Grouping != GroupPlain {
		t.Error("plain grouping default")
	}
	if _, err := Parse("SELECT a FROM t GROUP BY CUBE a"); err == nil {
		t.Error("CUBE requires parentheses")
	}
	if _, err := Parse("SELECT a FROM t GROUP BY CUBE (a"); err == nil {
		t.Error("unclosed CUBE list should fail")
	}
}

// TestParseExplainAnalyze: EXPLAIN ANALYZE is only an execution modifier when
// a SELECT follows; otherwise ANALYZE after EXPLAIN is the statistics
// statement being explained. The two must coexist.
func TestParseExplainAnalyze(t *testing.T) {
	stmt, err := Parse("EXPLAIN ANALYZE SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := stmt.(*ExplainStmt)
	if !ok || !ex.Analyze {
		t.Fatalf("EXPLAIN ANALYZE SELECT parsed as %T analyze=%v", stmt, ok && ex.Analyze)
	}
	if _, ok := ex.Stmt.(*SelectStmt); !ok {
		t.Fatalf("inner statement is %T, want *SelectStmt", ex.Stmt)
	}

	stmt, err = Parse("EXPLAIN SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if ex := stmt.(*ExplainStmt); ex.Analyze {
		t.Error("plain EXPLAIN must not set Analyze")
	}

	stmt, err = Parse("ANALYZE t")
	if err != nil {
		t.Fatal(err)
	}
	if an, ok := stmt.(*AnalyzeStmt); !ok || an.Table != "t" {
		t.Fatalf("ANALYZE t parsed as %T", stmt)
	}

	// EXPLAIN of the statistics statement: ANALYZE not followed by SELECT.
	stmt, err = Parse("EXPLAIN ANALYZE t")
	if err != nil {
		t.Fatal(err)
	}
	ex = stmt.(*ExplainStmt)
	if ex.Analyze {
		t.Error("EXPLAIN ANALYZE t must explain the ANALYZE statement, not set analyze mode")
	}
	if an, ok := ex.Stmt.(*AnalyzeStmt); !ok || an.Table != "t" {
		t.Fatalf("inner statement is %T (table %v)", ex.Stmt, ex.Stmt)
	}

	// Bare EXPLAIN ANALYZE explains analyze-everything.
	stmt, err = Parse("EXPLAIN ANALYZE")
	if err != nil {
		t.Fatal(err)
	}
	ex = stmt.(*ExplainStmt)
	if ex.Analyze {
		t.Error("bare EXPLAIN ANALYZE must not set analyze mode")
	}
	if an, ok := ex.Stmt.(*AnalyzeStmt); !ok || an.Table != "" {
		t.Fatalf("inner statement is %T", ex.Stmt)
	}
}
