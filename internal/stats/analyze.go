// Package stats implements statistics collection (ANALYZE) and the
// cardinality/selectivity estimation framework of Section 5 of the paper:
// predicate selectivity from histograms or System-R constants, join
// cardinality via histogram joining or distinct-count containment, and
// propagation of statistical summaries through every logical operator.
package stats

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/histogram"
	"repro/internal/storage"
)

// AnalyzeOptions configures statistics collection.
type AnalyzeOptions struct {
	// Buckets is the histogram bucket budget per column (default 32).
	Buckets int
	// Compressed selects compressed (end-biased) histograms instead of
	// plain equi-depth.
	Compressed bool
	// SampleRows, when > 0, builds histograms from a random sample of this
	// many rows instead of a full scan (§5.1.2).
	SampleRows int
	// Seed drives sampling for reproducibility.
	Seed int64
}

func (o AnalyzeOptions) withDefaults() AnalyzeOptions {
	if o.Buckets <= 0 {
		o.Buckets = 32
	}
	return o
}

// Analyze collects statistics for one stored table into its catalog entry:
// row and page counts and, per column, null count, distinct count,
// second-min/second-max and a histogram.
func Analyze(tab *storage.Table, opts AnalyzeOptions) error {
	opts = opts.withDefaults()
	def := tab.Def
	rows, err := tab.Rows(nil)
	if err != nil {
		return err
	}
	ts := &catalog.TableStats{
		RowCount:  float64(len(rows)),
		PageCount: float64(tab.PageCount()),
		ColStats:  make(map[int]*catalog.ColumnStats),
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	for ord := range def.Cols {
		vals := make([]datum.D, len(rows))
		nulls := 0.0
		for i, r := range rows {
			vals[i] = r[ord]
			if r[ord].IsNull() {
				nulls++
			}
		}
		cs := &catalog.ColumnStats{NullCount: nulls}
		cs.SecondMin, cs.SecondMax = secondExtremes(vals)
		if opts.SampleRows > 0 && opts.SampleRows < len(vals) {
			sample := histogram.Sample(vals, opts.SampleRows, rng)
			cs.Hist = histogram.BuildFromSample(sample, len(vals)-int(nulls), opts.Buckets)
			cs.DistinctCount = histogram.DistinctGEE(sample, len(vals))
		} else {
			if opts.Compressed {
				cs.Hist = histogram.BuildCompressed(vals, opts.Buckets, opts.Buckets/4)
			} else {
				cs.Hist = histogram.BuildEquiDepth(vals, opts.Buckets)
			}
			cs.DistinctCount = histogram.ExactDistinct(vals)
		}
		ts.ColStats[ord] = cs
	}
	// Multi-column index statistics: distinct key combinations (§5.1.1).
	for _, ix := range def.Indexes {
		if len(ix.Cols) < 2 {
			if len(ix.Cols) == 1 {
				ix.DistinctKeys = ts.ColStats[ix.Cols[0]].DistinctCount
			}
			continue
		}
		seen := make(map[uint64]struct{}, len(rows))
		for _, r := range rows {
			seen[r.Hash(ix.Cols)] = struct{}{}
		}
		ix.DistinctKeys = float64(len(seen))
	}
	def.Stats = ts
	return nil
}

// secondExtremes returns the second-lowest and second-highest non-NULL values
// (the paper notes min/max themselves are often outliers). With fewer than
// two distinct values both fall back to the extremes.
func secondExtremes(vals []datum.D) (datum.D, datum.D) {
	var nonNull []datum.D
	for _, v := range vals {
		if !v.IsNull() {
			nonNull = append(nonNull, v)
		}
	}
	if len(nonNull) == 0 {
		return datum.Null, datum.Null
	}
	sort.Slice(nonNull, func(i, j int) bool { return datum.Compare(nonNull[i], nonNull[j]) < 0 })
	lo := nonNull[0]
	for _, v := range nonNull {
		if datum.Compare(v, lo) > 0 {
			lo = v
			break
		}
	}
	hi := nonNull[len(nonNull)-1]
	for i := len(nonNull) - 1; i >= 0; i-- {
		if datum.Compare(nonNull[i], hi) < 0 {
			hi = nonNull[i]
			break
		}
	}
	return lo, hi
}

// AnalyzeJoint collects a two-dimensional histogram for a column pair,
// capturing the joint distribution the per-column histograms cannot (§5.1.1).
// The table must have been analyzed first.
func AnalyzeJoint(tab *storage.Table, colA, colB string, kOuter, kInner int) error {
	def := tab.Def
	a, b := def.Ordinal(colA), def.Ordinal(colB)
	if a < 0 || b < 0 {
		return fmt.Errorf("stats: unknown column in joint analyze (%q, %q)", colA, colB)
	}
	if kOuter <= 0 {
		kOuter = 16
	}
	if kInner <= 0 {
		kInner = 16
	}
	rows, err := tab.Rows(nil)
	if err != nil {
		return err
	}
	as := make([]datum.D, len(rows))
	bs := make([]datum.D, len(rows))
	for i, r := range rows {
		as[i], bs[i] = r[a], r[b]
	}
	if def.Stats == nil {
		def.Stats = &catalog.TableStats{ColStats: map[int]*catalog.ColumnStats{}}
	}
	if def.Stats.Joint == nil {
		def.Stats.Joint = map[[2]int]*histogram.Hist2D{}
	}
	def.Stats.Joint[[2]int{a, b}] = histogram.Build2D(as, bs, kOuter, kInner)
	return nil
}

// AnalyzeAll analyzes every table registered in both the store and catalog.
func AnalyzeAll(store *storage.Store, cat *catalog.Catalog, opts AnalyzeOptions) error {
	for _, def := range cat.Tables() {
		if tab, ok := store.Table(def.Name); ok {
			if err := Analyze(tab, opts); err != nil {
				return err
			}
		}
	}
	return nil
}
