package stats

// clamp_test.go property-checks the estimator's selectivity algebra: no
// random combination of conjunctions, disjunctions, negations and pathological
// leaf predicates (UDPs declaring out-of-range selectivities, columns with
// corrupt null fractions) may ever produce a selectivity outside [0,1], a
// negative row estimate, or a filter that amplifies its input cardinality.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datum"
	"repro/internal/logical"
)

// randStats builds input statistics for a handful of columns, deliberately
// including out-of-range null fractions a buggy ANALYZE (or future stat
// source) might produce.
func randStats(rng *rand.Rand, cols []logical.ColumnID) *RelStats {
	in := &RelStats{Rows: float64(rng.Intn(100000)), Cols: map[logical.ColumnID]*ColStat{}}
	for _, id := range cols {
		in.Cols[id] = &ColStat{
			Distinct: float64(rng.Intn(1000)), // may be 0
			NullFrac: rng.Float64()*1.6 - 0.3, // may be <0 or >1
		}
	}
	return in
}

// randPred builds a random predicate tree of bounded depth.
func randPred(rng *rand.Rand, cols []logical.ColumnID, depth int) logical.Scalar {
	col := func() logical.Scalar { return &logical.Col{ID: cols[rng.Intn(len(cols))]} }
	konst := func() logical.Scalar { return &logical.Const{Val: datum.NewInt(int64(rng.Intn(100)))} }
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(5) {
		case 0:
			ops := []logical.CmpOp{logical.CmpEq, logical.CmpNe, logical.CmpLt, logical.CmpLe, logical.CmpGt, logical.CmpGe}
			return &logical.Cmp{Op: ops[rng.Intn(len(ops))], L: col(), R: konst()}
		case 1:
			return &logical.IsNull{E: col(), Negated: rng.Intn(2) == 0}
		case 2:
			n := 1 + rng.Intn(6)
			list := make([]logical.Scalar, n)
			for i := range list {
				list[i] = konst()
			}
			return &logical.InList{E: col(), List: list, Negated: rng.Intn(2) == 0}
		case 3:
			// UDP declaring a selectivity well outside [0,1].
			return &logical.UDPRef{Name: "udp", Selectivity: rng.Float64()*6 - 3}
		default:
			return &logical.Cmp{Op: logical.CmpEq, L: col(), R: col()}
		}
	}
	l := randPred(rng, cols, depth-1)
	r := randPred(rng, cols, depth-1)
	switch rng.Intn(3) {
	case 0:
		return &logical.And{L: l, R: r}
	case 1:
		return &logical.Or{L: l, R: r}
	default:
		return &logical.Not{E: l}
	}
}

func TestSelectivityAlwaysInUnitInterval(t *testing.T) {
	cols := []logical.ColumnID{1, 2, 3, 4}
	for _, mode := range []Mode{Independence, MostSelective} {
		rng := rand.New(rand.NewSource(int64(mode) + 5))
		e := &Estimator{Mode: mode, UseHistograms: true, cache: map[logical.RelExpr]*RelStats{}}
		for trial := 0; trial < 2000; trial++ {
			in := randStats(rng, cols)
			pred := randPred(rng, cols, 4)
			sel := e.Selectivity(pred, in)
			if sel < 0 || sel > 1 || math.IsNaN(sel) {
				t.Fatalf("mode %v trial %d: selectivity %v outside [0,1]\npred: %s", mode, trial, sel, pred)
			}
		}
	}
}

func TestFilterStatsNeverAmplifiesOrGoesNegative(t *testing.T) {
	cols := []logical.ColumnID{1, 2, 3, 4}
	for _, mode := range []Mode{Independence, MostSelective} {
		rng := rand.New(rand.NewSource(int64(mode) + 77))
		e := &Estimator{Mode: mode, UseHistograms: true, cache: map[logical.RelExpr]*RelStats{}}
		for trial := 0; trial < 2000; trial++ {
			in := randStats(rng, cols)
			n := 1 + rng.Intn(5)
			filters := make([]logical.Scalar, n)
			for i := range filters {
				filters[i] = randPred(rng, cols, 3)
			}
			out := e.filterStats(in, filters)
			if out.Rows < 0 || math.IsNaN(out.Rows) {
				t.Fatalf("mode %v trial %d: negative/NaN rows %v", mode, trial, out.Rows)
			}
			if out.Rows > in.Rows {
				t.Fatalf("mode %v trial %d: filter amplified %v -> %v rows", mode, trial, in.Rows, out.Rows)
			}
		}
	}
}

func TestJoinSelectivityAlwaysInUnitInterval(t *testing.T) {
	lcols := []logical.ColumnID{1, 2}
	rcols := []logical.ColumnID{3, 4}
	for _, mode := range []Mode{Independence, MostSelective} {
		rng := rand.New(rand.NewSource(int64(mode) + 99))
		e := &Estimator{Mode: mode, UseHistograms: true, cache: map[logical.RelExpr]*RelStats{}}
		for trial := 0; trial < 2000; trial++ {
			l := randStats(rng, lcols)
			r := randStats(rng, rcols)
			n := 1 + rng.Intn(4)
			preds := make([]logical.Scalar, n)
			for i := range preds {
				// Mix genuine join predicates with mixed/filter-shaped ones.
				if rng.Intn(2) == 0 {
					preds[i] = &logical.Cmp{
						Op: logical.CmpEq,
						L:  &logical.Col{ID: lcols[rng.Intn(len(lcols))]},
						R:  &logical.Col{ID: rcols[rng.Intn(len(rcols))]},
					}
				} else {
					preds[i] = randPred(rng, append(append([]logical.ColumnID{}, lcols...), rcols...), 2)
				}
			}
			sel := e.JoinSelectivity(preds, l, r)
			if sel < 0 || sel > 1 || math.IsNaN(sel) {
				t.Fatalf("mode %v trial %d: join selectivity %v outside [0,1]", mode, trial, sel)
			}
		}
	}
}

// TestClamp01 pins the guard itself, NaN included.
func TestClamp01(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-0.5, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {1.5, 1}, {math.NaN(), 0},
		{math.Inf(1), 1}, {math.Inf(-1), 0},
	}
	for _, c := range cases {
		if got := clamp01(c.in); got != c.want {
			t.Errorf("clamp01(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
