package stats

import (
	"math"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/histogram"
	"repro/internal/logical"
)

// System-R style fallback constants used when no histogram or distinct count
// is available (the paper's [55]).
const (
	DefaultEqSel    = 0.10
	DefaultRangeSel = 1.0 / 3.0
	DefaultSel      = 1.0 / 3.0
)

// Mode selects how conjunctions are combined (§5.1.3).
type Mode uint8

const (
	// Independence multiplies the selectivities of all conjuncts.
	Independence Mode = iota
	// MostSelective uses only the most selective conjunct, the alternative
	// the paper attributes to some systems ([17]).
	MostSelective
)

// ColStat is the statistical summary of one query column.
type ColStat struct {
	Distinct float64
	NullFrac float64
	Hist     *histogram.Histogram // may be nil
}

// RelStats is the statistical summary (a logical property) of a relational
// expression's output.
type RelStats struct {
	Rows float64
	Cols map[logical.ColumnID]*ColStat
	// Joint holds 2-D histograms for column pairs (when collected),
	// letting conjunctions over correlated columns sidestep the
	// independence assumption (§5.1.1).
	Joint map[[2]logical.ColumnID]*histogram.Hist2D
}

func (s *RelStats) col(id logical.ColumnID) *ColStat {
	if cs, ok := s.Cols[id]; ok {
		return cs
	}
	return nil
}

// Estimator derives RelStats bottom-up over logical expressions.
type Estimator struct {
	Meta *logical.Metadata
	Mode Mode
	// UseHistograms disables histogram use when false (constants only),
	// reproducing the degradation E10/E12 measure.
	UseHistograms bool
	// Overrides, when set, supplies feedback-patched cardinalities consulted
	// before the histogram estimate: a (table, predicate-fingerprint) match
	// on a scan or a filtered scan replaces the computed row count with the
	// observed one. Estimates only — results are never affected.
	Overrides *Overrides
	// SegmentStats, when set, returns coarse statistics synthesized from a
	// disk-backed table's segment footers (zone maps, NULL counts, distinct
	// sketches). Consulted when a table has never been ANALYZEd, or when the
	// ANALYZE-time row count has drifted ≥2x from the actual stored row
	// count — segment metadata is always current, so it wins over stale
	// statistics. Returns nil when no segment metadata exists.
	SegmentStats func(table string) *catalog.TableStats
	// ScanPages, when set, returns the page count a scan of the table would
	// actually read after zone-map segment elimination under the given
	// residual filters, or -1 when unknown. Lets the cost model charge I/O
	// only for non-pruned segments.
	ScanPages func(scan *logical.Scan, filters []logical.Scalar) float64
	cache     map[logical.RelExpr]*RelStats
}

// NewEstimator returns an estimator with histograms enabled.
func NewEstimator(md *logical.Metadata) *Estimator {
	return &Estimator{Meta: md, UseHistograms: true, cache: make(map[logical.RelExpr]*RelStats)}
}

// Stats computes (and caches) the statistics of rel's output.
func (e *Estimator) Stats(rel logical.RelExpr) *RelStats {
	if s, ok := e.cache[rel]; ok {
		return s
	}
	s := e.compute(rel)
	// Guard the row estimate: never negative, never NaN (a poisoned estimate
	// would silently corrupt every cost above this node).
	if s.Rows < 0 || math.IsNaN(s.Rows) {
		s.Rows = 0
	}
	e.cache[rel] = s
	return s
}

func (e *Estimator) compute(rel logical.RelExpr) *RelStats {
	switch t := rel.(type) {
	case *logical.Scan:
		out := e.scanStats(t)
		e.applyOverride(out, t, nil)
		return out
	case *logical.Values:
		out := &RelStats{Rows: float64(len(t.Rows)), Cols: map[logical.ColumnID]*ColStat{}}
		for _, c := range t.Cols {
			out.Cols[c] = &ColStat{Distinct: out.Rows}
		}
		return out
	case *logical.Select:
		in := e.Stats(t.Input)
		out := e.filterStats(in, t.Filters)
		if scan, ok := t.Input.(*logical.Scan); ok {
			e.applyOverride(out, scan, t.Filters)
		}
		return out
	case *logical.Project:
		in := e.Stats(t.Input)
		out := &RelStats{Rows: in.Rows, Cols: map[logical.ColumnID]*ColStat{}, Joint: in.Joint}
		for _, it := range t.Items {
			if c, ok := it.Expr.(*logical.Col); ok {
				if cs := in.col(c.ID); cs != nil {
					out.Cols[it.ID] = cs
					continue
				}
			}
			out.Cols[it.ID] = &ColStat{Distinct: math.Max(1, in.Rows)}
		}
		return out
	case *logical.Join:
		return e.joinStats(t)
	case *logical.GroupBy:
		return e.groupByStats(t)
	case *logical.Limit:
		in := e.Stats(t.Input)
		return &RelStats{Rows: math.Min(in.Rows, float64(t.N)), Cols: in.Cols, Joint: in.Joint}
	case *logical.Union:
		l := e.Stats(t.Left)
		r := e.Stats(t.Right)
		out := &RelStats{Rows: l.Rows + r.Rows, Cols: map[logical.ColumnID]*ColStat{}}
		for i, c := range t.Cols {
			var dl, dr float64 = 1, 1
			if cs := l.col(t.LeftCols[i]); cs != nil {
				dl = cs.Distinct
			}
			if cs := r.col(t.RightCols[i]); cs != nil {
				dr = cs.Distinct
			}
			out.Cols[c] = &ColStat{Distinct: math.Min(out.Rows, dl+dr)}
		}
		return out
	}
	return &RelStats{Rows: 1, Cols: map[logical.ColumnID]*ColStat{}}
}

// tableStats resolves the statistics to estimate a scan from: the ANALYZE
// output when present and fresh, otherwise coarse segment-footer statistics
// (when available). "Fresh" means the analyzed row count is within 2x of the
// row count the segment metadata reports — beyond that the table has changed
// enough since ANALYZE that always-current segment metadata is the better
// basis.
func (e *Estimator) tableStats(t *logical.Scan) *catalog.TableStats {
	if t.Table == nil {
		return nil
	}
	ts := t.Table.Stats
	if e.SegmentStats == nil {
		return ts
	}
	ss := e.SegmentStats(t.Table.Name)
	if ss == nil {
		return ts
	}
	if ts == nil {
		return ss
	}
	if ts.RowCount >= 2*ss.RowCount || ss.RowCount >= 2*math.Max(ts.RowCount, 1) {
		return ss
	}
	return ts
}

// TableShape returns the row and page counts a scan of t should be costed
// with. Rows and pages come from the freshest statistics available (ANALYZE
// or segment metadata); when zone-map pruning applies, pages is reduced to
// the pages of only the segments the filters cannot eliminate, so a
// sequential scan under a selective range predicate is charged its true,
// post-pruning I/O. Pages is floored at 1.
func (e *Estimator) TableShape(t *logical.Scan, filters []logical.Scalar) (rows, pages float64) {
	rows, pages = 1, 1
	if ts := e.tableStats(t); ts != nil {
		rows, pages = ts.RowCount, ts.PageCount
	}
	if len(filters) > 0 && e.ScanPages != nil {
		if p := e.ScanPages(t, filters); p >= 0 && p < pages {
			pages = p
		}
	}
	return rows, math.Max(1, pages)
}

func (e *Estimator) scanStats(t *logical.Scan) *RelStats {
	out := &RelStats{Rows: 1, Cols: map[logical.ColumnID]*ColStat{}}
	ts := e.tableStats(t)
	if ts == nil {
		for _, id := range t.Cols {
			out.Cols[id] = &ColStat{Distinct: 1}
		}
		return out
	}
	out.Rows = ts.RowCount
	if len(ts.Joint) > 0 && e.UseHistograms {
		out.Joint = map[[2]logical.ColumnID]*histogram.Hist2D{}
		for pair, h2 := range ts.Joint {
			a, aok := colIDForOrd(e.Meta, t, pair[0])
			b, bok := colIDForOrd(e.Meta, t, pair[1])
			if aok && bok {
				out.Joint[[2]logical.ColumnID{a, b}] = h2
			}
		}
	}
	// Segment-footer stats back-fill columns ANALYZE did not cover: the
	// footer's distinct sketch gives a real NDV where the fallback would
	// otherwise assume every row is distinct (wildly over-selective for
	// equality on low-cardinality columns). Fetched lazily, once per scan.
	var segTS *catalog.TableStats
	segFetched := false
	segStats := func(ord int) *catalog.ColumnStats {
		if !segFetched {
			segFetched = true
			if e.SegmentStats != nil && t.Table != nil {
				segTS = e.SegmentStats(t.Table.Name)
			}
		}
		if segTS == nil {
			return nil
		}
		return segTS.ColStats[ord]
	}
	for _, id := range t.Cols {
		ord := e.Meta.Column(id).BaseOrd
		cs, ok := ts.ColStats[ord]
		if !ok {
			if sc := segStats(ord); sc != nil {
				nullFrac := 0.0
				if ts.RowCount > 0 {
					nullFrac = sc.NullCount / ts.RowCount
				}
				out.Cols[id] = &ColStat{Distinct: math.Max(1, sc.DistinctCount), NullFrac: nullFrac}
				continue
			}
			out.Cols[id] = &ColStat{Distinct: math.Max(1, ts.RowCount)}
			continue
		}
		nullFrac := 0.0
		if ts.RowCount > 0 {
			nullFrac = cs.NullCount / ts.RowCount
		}
		st := &ColStat{Distinct: math.Max(1, cs.DistinctCount), NullFrac: nullFrac}
		if e.UseHistograms {
			st.Hist = cs.Hist
		}
		out.Cols[id] = st
	}
	return out
}

// applyOverride replaces a scan (or filtered-scan) row estimate with an
// observed cardinality when the engine's feedback loop recorded one for the
// same (table, predicate fingerprint). Per-column summaries are kept — only
// the row count is patched — and distincts are re-capped against it.
func (e *Estimator) applyOverride(out *RelStats, scan *logical.Scan, filters []logical.Scalar) {
	if e.Overrides == nil || scan.Table == nil {
		return
	}
	fp, ok := FingerprintFilters(e.Meta, scan.Table.Name, filters)
	if !ok {
		return
	}
	rows, ok := e.Overrides.Get(scan.Table.Name, fp)
	if !ok {
		return
	}
	out.Rows = rows
	for id, cs := range out.Cols {
		if cs.Distinct > out.Rows && out.Rows > 0 {
			nc := *cs
			nc.Distinct = math.Max(1, out.Rows)
			out.Cols[id] = &nc
		}
	}
}

func colIDForOrd(md *logical.Metadata, t *logical.Scan, ord int) (logical.ColumnID, bool) {
	for _, id := range t.Cols {
		if md.Column(id).BaseOrd == ord {
			return id, true
		}
	}
	return 0, false
}

// colBound accumulates range restrictions on one column from conjuncts.
type colBound struct {
	lo, hi         datum.D
	loIncl, hiIncl bool
	idxs           []int
}

// filterStats applies a conjunction to input statistics, scaling row counts
// and propagating per-column summaries (§5.1.3). When a 2-D histogram covers
// a pair of restricted columns, the joint distribution replaces the
// independence product for those conjuncts.
func (e *Estimator) filterStats(in *RelStats, filters []logical.Scalar) *RelStats {
	out := &RelStats{Rows: in.Rows, Cols: map[logical.ColumnID]*ColStat{}, Joint: in.Joint}
	for id, cs := range in.Cols {
		out.Cols[id] = cs
	}
	// Gather per-column bounds from simple conjuncts.
	bounds := map[logical.ColumnID]*colBound{}
	if len(in.Joint) > 0 {
		for i, f := range filters {
			cmp, ok := f.(*logical.Cmp)
			if !ok {
				continue
			}
			col, val, op, ok := normalizeCmp(cmp)
			if !ok {
				continue
			}
			b, ok := bounds[col]
			if !ok {
				b = &colBound{lo: datum.Null, hi: datum.Null}
				bounds[col] = b
			}
			switch op {
			case logical.CmpEq:
				b.lo, b.loIncl, b.hi, b.hiIncl = val, true, val, true
			case logical.CmpLt:
				b.hi, b.hiIncl = val, false
			case logical.CmpLe:
				b.hi, b.hiIncl = val, true
			case logical.CmpGt:
				b.lo, b.loIncl = val, false
			case logical.CmpGe:
				b.lo, b.loIncl = val, true
			default:
				delete(bounds, col)
				continue
			}
			b.idxs = append(b.idxs, i)
		}
	}
	consumed := map[int]bool{}
	sel := 1.0
	minSel := 1.0
	mul := func(s float64) {
		sel *= s
		if s < minSel {
			minSel = s
		}
	}
	for pair, h2 := range in.Joint {
		ba, aok := bounds[pair[0]]
		bb, bok := bounds[pair[1]]
		if !aok || !bok {
			continue
		}
		mul(h2.SelectivityRanges(ba.lo, ba.loIncl, ba.hi, ba.hiIncl, bb.lo, bb.loIncl, bb.hi, bb.hiIncl))
		for _, i := range append(ba.idxs, bb.idxs...) {
			consumed[i] = true
		}
	}
	for i, f := range filters {
		if consumed[i] {
			e.narrowColumn(out, f)
			continue
		}
		mul(e.Selectivity(f, in))
		// Narrow the summary of directly restricted columns.
		e.narrowColumn(out, f)
	}
	if e.Mode == MostSelective {
		sel = minSel
	}
	// The per-conjunct factors are individually clamped, but their product
	// can still degrade (joint-histogram factors, UDP declarations); clamp
	// the combined selectivity so the filter never amplifies rows or goes
	// negative.
	out.Rows = in.Rows * clamp01(sel)
	// Cap distincts at the new row count.
	for id, cs := range out.Cols {
		if cs.Distinct > out.Rows && out.Rows > 0 {
			nc := *cs
			nc.Distinct = math.Max(1, out.Rows)
			out.Cols[id] = &nc
		}
	}
	return out
}

// narrowColumn updates the column summary for simple col-vs-const predicates.
// The inability to touch *other* columns is the correlation blind spot the
// paper highlights; E12 measures it.
func (e *Estimator) narrowColumn(out *RelStats, f logical.Scalar) {
	cmp, ok := f.(*logical.Cmp)
	if !ok {
		return
	}
	col, cval, op, ok := normalizeCmp(cmp)
	if !ok {
		return
	}
	cs := out.col(col)
	if cs == nil {
		return
	}
	nc := *cs
	nc.NullFrac = 0
	switch op {
	case logical.CmpEq:
		nc.Distinct = 1
		if cs.Hist != nil {
			nc.Hist = cs.Hist.FilterRange(cval, true, cval, true)
		}
	case logical.CmpLt, logical.CmpLe:
		if cs.Hist != nil {
			nc.Hist = cs.Hist.FilterRange(datum.Null, false, cval, op == logical.CmpLe)
			nc.Distinct = math.Max(1, nc.Hist.Distinct)
		}
	case logical.CmpGt, logical.CmpGe:
		if cs.Hist != nil {
			nc.Hist = cs.Hist.FilterRange(cval, op == logical.CmpGe, datum.Null, false)
			nc.Distinct = math.Max(1, nc.Hist.Distinct)
		}
	default:
		return
	}
	out.Cols[col] = &nc
}

// normalizeCmp extracts (column, constant, op) from col-op-const or
// const-op-col comparisons.
func normalizeCmp(c *logical.Cmp) (logical.ColumnID, datum.D, logical.CmpOp, bool) {
	if col, ok := c.L.(*logical.Col); ok {
		if k, ok := c.R.(*logical.Const); ok {
			return col.ID, k.Val, c.Op, true
		}
	}
	if col, ok := c.R.(*logical.Col); ok {
		if k, ok := c.L.(*logical.Const); ok {
			return col.ID, k.Val, c.Op.Commute(), true
		}
	}
	return 0, datum.Null, 0, false
}

// Selectivity estimates the fraction of input rows satisfying pred.
func (e *Estimator) Selectivity(pred logical.Scalar, in *RelStats) float64 {
	switch t := pred.(type) {
	case *logical.Const:
		if logical.TruthValue(t.Val) {
			return 1
		}
		return 0
	case *logical.Cmp:
		return e.cmpSelectivity(t, in)
	case *logical.And:
		l := e.Selectivity(t.L, in)
		r := e.Selectivity(t.R, in)
		if e.Mode == MostSelective {
			return clamp01(math.Min(l, r))
		}
		return clamp01(l * r)
	case *logical.Or:
		l := e.Selectivity(t.L, in)
		r := e.Selectivity(t.R, in)
		return clamp01(l + r - l*r)
	case *logical.Not:
		return clamp01(1 - e.Selectivity(t.E, in))
	case *logical.IsNull:
		var frac float64
		if c, ok := t.E.(*logical.Col); ok {
			if cs := in.col(c.ID); cs != nil {
				frac = cs.NullFrac
			}
		}
		if t.Negated {
			return clamp01(1 - frac)
		}
		return clamp01(frac)
	case *logical.InList:
		if c, ok := t.E.(*logical.Col); ok {
			sel := 0.0
			for _, item := range t.List {
				if k, ok := item.(*logical.Const); ok {
					sel += e.colConstSelectivity(c.ID, k.Val, logical.CmpEq, in)
				} else {
					sel += DefaultEqSel
				}
			}
			sel = clamp01(sel)
			if t.Negated {
				return clamp01(1 - sel)
			}
			return sel
		}
		return DefaultSel
	case *logical.Subquery:
		// No statistics cross query blocks here; use a neutral guess.
		return 0.5
	case *logical.UDPRef:
		return clamp01(t.Selectivity)
	}
	return DefaultSel
}

func (e *Estimator) cmpSelectivity(c *logical.Cmp, in *RelStats) float64 {
	// col op const
	if col, cval, op, ok := normalizeCmp(c); ok {
		return e.colConstSelectivity(col, cval, op, in)
	}
	// col op col (within the same input): use distinct counts.
	lc, lok := c.L.(*logical.Col)
	rc, rok := c.R.(*logical.Col)
	if lok && rok {
		ls, rs := in.col(lc.ID), in.col(rc.ID)
		if ls != nil && rs != nil {
			switch c.Op {
			case logical.CmpEq:
				return 1 / math.Max(1, math.Max(ls.Distinct, rs.Distinct))
			case logical.CmpNe:
				return clamp01(1 - 1/math.Max(1, math.Max(ls.Distinct, rs.Distinct)))
			default:
				return DefaultRangeSel
			}
		}
	}
	switch c.Op {
	case logical.CmpEq:
		return DefaultEqSel
	case logical.CmpNe:
		return 1 - DefaultEqSel
	default:
		return DefaultRangeSel
	}
}

func (e *Estimator) colConstSelectivity(col logical.ColumnID, cval datum.D, op logical.CmpOp, in *RelStats) float64 {
	cs := in.col(col)
	if cs == nil {
		if op == logical.CmpEq {
			return DefaultEqSel
		}
		return DefaultRangeSel
	}
	nonNull := 1 - cs.NullFrac
	switch op {
	case logical.CmpEq:
		if cs.Hist != nil && cs.Hist.Total > 0 {
			return clamp01(cs.Hist.SelectivityEq(cval) * nonNull)
		}
		return clamp01(nonNull / math.Max(1, cs.Distinct))
	case logical.CmpNe:
		return clamp01(1 - e.colConstSelectivity(col, cval, logical.CmpEq, in))
	case logical.CmpLt:
		return e.rangeSel(cs, datum.Null, false, cval, false, nonNull)
	case logical.CmpLe:
		return e.rangeSel(cs, datum.Null, false, cval, true, nonNull)
	case logical.CmpGt:
		return e.rangeSel(cs, cval, false, datum.Null, false, nonNull)
	case logical.CmpGe:
		return e.rangeSel(cs, cval, true, datum.Null, false, nonNull)
	case logical.CmpLike:
		if cval.Kind() == datum.KindString {
			prefix := logical.LikePrefix(cval.Str())
			if prefix == cval.Str() {
				// No wildcards: equality.
				return e.colConstSelectivity(col, cval, logical.CmpEq, in)
			}
			if prefix != "" && cs.Hist != nil {
				hi := prefix[:len(prefix)-1] + string(prefix[len(prefix)-1]+1)
				return clamp01(cs.Hist.SelectivityRange(datum.NewString(prefix), true, datum.NewString(hi), false) * nonNull)
			}
		}
		return DefaultRangeSel
	}
	return DefaultSel
}

func (e *Estimator) rangeSel(cs *ColStat, lo datum.D, loIncl bool, hi datum.D, hiIncl bool, nonNull float64) float64 {
	if cs.Hist != nil && cs.Hist.Total > 0 {
		return clamp01(cs.Hist.SelectivityRange(lo, loIncl, hi, hiIncl) * nonNull)
	}
	return DefaultRangeSel
}

// joinStats estimates join output cardinality and column summaries.
func (e *Estimator) joinStats(j *logical.Join) *RelStats {
	l := e.Stats(j.Left)
	r := e.Stats(j.Right)
	cross := l.Rows * r.Rows
	sel := e.JoinSelectivity(j.On, l, r)
	innerRows := cross * sel

	out := &RelStats{Cols: map[logical.ColumnID]*ColStat{}}
	out.Joint = mergeJoint(l.Joint, r.Joint)
	switch j.Kind {
	case logical.InnerJoin:
		out.Rows = innerRows
	case logical.LeftOuterJoin:
		out.Rows = math.Max(innerRows, l.Rows)
	case logical.FullOuterJoin:
		out.Rows = math.Max(innerRows, math.Max(l.Rows, r.Rows))
	case logical.SemiJoin:
		// Fraction of left rows with at least one match.
		out.Rows = math.Min(l.Rows, innerRows)
		if r.Rows > 0 {
			frac := innerRows / math.Max(1, l.Rows)
			out.Rows = l.Rows * clamp01(frac)
		}
	case logical.AntiJoin:
		frac := innerRows / math.Max(1, l.Rows)
		out.Rows = l.Rows * clamp01(1-clamp01(frac))
	}
	for id, cs := range l.Cols {
		out.Cols[id] = capDistinct(cs, out.Rows)
	}
	if j.Kind.PreservesRight() {
		for id, cs := range r.Cols {
			out.Cols[id] = capDistinct(cs, out.Rows)
		}
	}
	return out
}

func mergeJoint(a, b map[[2]logical.ColumnID]*histogram.Hist2D) map[[2]logical.ColumnID]*histogram.Hist2D {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(map[[2]logical.ColumnID]*histogram.Hist2D, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}

func capDistinct(cs *ColStat, rows float64) *ColStat {
	if cs.Distinct <= rows {
		return cs
	}
	nc := *cs
	nc.Distinct = math.Max(1, rows)
	return &nc
}

// JoinSelectivity estimates the combined selectivity of join predicates
// between two inputs: histogram joining when possible, otherwise 1/max of the
// distinct counts, otherwise constants.
func (e *Estimator) JoinSelectivity(preds []logical.Scalar, l, r *RelStats) float64 {
	if len(preds) == 0 {
		return 1
	}
	sel := 1.0
	minSel := 1.0
	for _, p := range preds {
		s := e.joinPredSelectivity(p, l, r)
		sel *= s
		if s < minSel {
			minSel = s
		}
	}
	if e.Mode == MostSelective {
		return clamp01(minSel)
	}
	return clamp01(sel)
}

func (e *Estimator) joinPredSelectivity(p logical.Scalar, l, r *RelStats) float64 {
	cmp, ok := p.(*logical.Cmp)
	if !ok {
		return DefaultSel
	}
	lc, lok := cmp.L.(*logical.Col)
	rc, rok := cmp.R.(*logical.Col)
	if !lok || !rok {
		// Mixed predicate: treat as a filter over the cross product.
		combined := &RelStats{Rows: l.Rows * r.Rows, Cols: map[logical.ColumnID]*ColStat{}}
		for id, cs := range l.Cols {
			combined.Cols[id] = cs
		}
		for id, cs := range r.Cols {
			combined.Cols[id] = cs
		}
		return e.Selectivity(p, combined)
	}
	ls := l.col(lc.ID)
	rs := r.col(rc.ID)
	if ls == nil || rs == nil {
		// Sides swapped relative to the plan's children.
		ls = l.col(rc.ID)
		rs = r.col(lc.ID)
	}
	if ls == nil || rs == nil {
		if cmp.Op == logical.CmpEq {
			return DefaultEqSel
		}
		return DefaultRangeSel
	}
	if cmp.Op != logical.CmpEq {
		return DefaultRangeSel
	}
	if e.UseHistograms && ls.Hist != nil && rs.Hist != nil && ls.Hist.Total > 0 && rs.Hist.Total > 0 {
		card := histogram.JoinCardinality(ls.Hist, rs.Hist)
		denom := ls.Hist.Total * rs.Hist.Total
		if denom > 0 {
			return clamp01(card / denom)
		}
	}
	return 1 / math.Max(1, math.Max(ls.Distinct, rs.Distinct))
}

// groupByStats estimates one row per group.
func (e *Estimator) groupByStats(g *logical.GroupBy) *RelStats {
	in := e.Stats(g.Input)
	out := &RelStats{Cols: map[logical.ColumnID]*ColStat{}}
	if len(g.GroupCols) == 0 {
		out.Rows = 1
	} else {
		groups := 1.0
		for _, c := range g.GroupCols {
			if cs := in.col(c); cs != nil {
				groups *= math.Max(1, cs.Distinct)
			} else {
				groups *= math.Max(1, in.Rows)
			}
			if groups > in.Rows {
				groups = math.Max(1, in.Rows)
				break
			}
		}
		out.Rows = math.Min(groups, math.Max(1, in.Rows))
	}
	for _, c := range g.GroupCols {
		if cs := in.col(c); cs != nil {
			out.Cols[c] = capDistinct(cs, out.Rows)
		} else {
			out.Cols[c] = &ColStat{Distinct: out.Rows}
		}
	}
	for _, a := range g.Aggs {
		out.Cols[a.ID] = &ColStat{Distinct: math.Max(1, out.Rows)}
	}
	return out
}

// clamp01 confines a selectivity to [0,1]; NaN (e.g. 0/0 from degenerate
// histograms) maps to 0 so it cannot poison downstream cardinalities.
func clamp01(f float64) float64 {
	if f < 0 || math.IsNaN(f) {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
