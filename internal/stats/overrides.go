// Cardinality overrides: execution feedback promoted into the estimator.
// Analyzed executions observe the true output cardinality of table scans;
// those observations are stored per (table, predicate fingerprint) and
// consulted before the histogram estimate, so a statement whose statistics
// have drifted (bulk load without ANALYZE, correlated predicates) re-plans
// with runtime truth instead of stale summaries. Overrides only ever change
// estimates — plan choice, never results.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/datum"
	"repro/internal/logical"
)

// materialChange is the q-error between an existing override and a new
// observation past which the override is considered materially changed (the
// signal callers use to invalidate cached plans). Refreshes within the
// factor update the stored value silently.
const materialChange = 1.5

// Overrides is a concurrency-safe store of observed cardinalities keyed by
// (table, predicate fingerprint). The empty fingerprint keys the bare-scan
// (table cardinality) override.
type Overrides struct {
	mu sync.RWMutex
	m  map[overrideKey]float64
}

type overrideKey struct {
	table string
	pred  string
}

// NewOverrides returns an empty override store.
func NewOverrides() *Overrides {
	return &Overrides{m: make(map[overrideKey]float64)}
}

// Get returns the observed cardinality for (table, pred), if recorded.
func (o *Overrides) Get(table, pred string) (float64, bool) {
	if o == nil {
		return 0, false
	}
	o.mu.RLock()
	rows, ok := o.m[overrideKey{table, pred}]
	o.mu.RUnlock()
	return rows, ok
}

// Set records an observed cardinality and reports whether the store changed
// materially: a new key, or an existing one whose value moved by more than a
// factor of materialChange. Non-material refreshes still update the stored
// value.
func (o *Overrides) Set(table, pred string, rows float64) bool {
	if rows < 0 {
		rows = 0
	}
	k := overrideKey{table, pred}
	o.mu.Lock()
	defer o.mu.Unlock()
	old, ok := o.m[k]
	o.m[k] = rows
	if !ok {
		return true
	}
	return qerr(old, rows) > materialChange
}

// Len reports how many overrides are recorded.
func (o *Overrides) Len() int {
	if o == nil {
		return 0
	}
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.m)
}

// qerr mirrors physical.QError without the import cycle: the symmetric
// misestimation factor with both sides floored at one row.
func qerr(a, b float64) float64 {
	if a < 1 {
		a = 1
	}
	if b < 1 {
		b = 1
	}
	if a > b {
		return a / b
	}
	return b / a
}

// FingerprintFilters canonicalizes a conjunction applied directly to a scan
// of the named base table. The rendering is binding-independent — columns
// appear as base-table ordinals, conjuncts are sorted — so the same logical
// predicate fingerprints identically across statements, aliases and plan
// shapes. ok is false when any conjunct is not a simple single-table
// predicate (column-vs-column comparisons, subqueries, UDPs, columns of
// other tables): such observations are not safely attributable to (table,
// predicate) and must not become overrides. An empty conjunction
// fingerprints to "", the bare-scan (table cardinality) key.
func FingerprintFilters(md *logical.Metadata, table string, filters []logical.Scalar) (string, bool) {
	if len(filters) == 0 {
		return "", true
	}
	parts := make([]string, 0, len(filters))
	for _, f := range filters {
		p, ok := fingerprintPred(md, table, f)
		if !ok {
			return "", false
		}
		parts = append(parts, p)
	}
	sort.Strings(parts)
	return strings.Join(parts, "&"), true
}

func fingerprintPred(md *logical.Metadata, table string, f logical.Scalar) (string, bool) {
	switch t := f.(type) {
	case *logical.Cmp:
		col, val, op, ok := normalizeCmp(t)
		if !ok {
			return "", false
		}
		ord, ok := baseOrd(md, table, col)
		if !ok {
			return "", false
		}
		return fmt.Sprintf("#%d %v %s", ord, op, fpConst(val)), true
	case *logical.IsNull:
		c, ok := t.E.(*logical.Col)
		if !ok {
			return "", false
		}
		ord, ok := baseOrd(md, table, c.ID)
		if !ok {
			return "", false
		}
		if t.Negated {
			return fmt.Sprintf("#%d notnull", ord), true
		}
		return fmt.Sprintf("#%d null", ord), true
	case *logical.InList:
		c, ok := t.E.(*logical.Col)
		if !ok {
			return "", false
		}
		ord, ok := baseOrd(md, table, c.ID)
		if !ok {
			return "", false
		}
		vals := make([]string, 0, len(t.List))
		for _, item := range t.List {
			k, ok := item.(*logical.Const)
			if !ok {
				return "", false
			}
			vals = append(vals, fpConst(k.Val))
		}
		sort.Strings(vals)
		neg := ""
		if t.Negated {
			neg = "!"
		}
		return fmt.Sprintf("#%d %sin(%s)", ord, neg, strings.Join(vals, ",")), true
	}
	return "", false
}

// baseOrd resolves a column to its base-table ordinal, verifying it actually
// belongs to the given table.
func baseOrd(md *logical.Metadata, table string, id logical.ColumnID) (int, bool) {
	cm := md.Column(id)
	if cm.Base == nil || cm.Base.Name != table {
		return 0, false
	}
	return cm.BaseOrd, true
}

// fpConst renders a constant with its kind tag so values that compare equal
// across kinds (1 vs "1") cannot collide.
func fpConst(d datum.D) string {
	return fmt.Sprintf("%d:%s", int(d.Kind()), d.String())
}
