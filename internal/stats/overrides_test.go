package stats

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/logical"
)

// overrideFixture registers table t(a INT, b INT) under the given binding in
// a fresh Metadata and returns the column IDs.
func overrideFixture(binding string) (*logical.Metadata, *catalog.Table, []logical.ColumnID) {
	md := logical.NewMetadata()
	tbl := &catalog.Table{Name: "t", Cols: []catalog.Column{
		{Name: "a", Kind: datum.KindInt},
		{Name: "b", Kind: datum.KindInt},
	}}
	ids := md.AddTable(tbl, binding)
	return md, tbl, ids
}

func eqConst(id logical.ColumnID, v int64) logical.Scalar {
	return &logical.Cmp{Op: logical.CmpEq, L: &logical.Col{ID: id}, R: &logical.Const{Val: datum.NewInt(v)}}
}

// The fingerprint must not depend on binding names, conjunct order, or which
// side of a comparison the column appears on: the same logical predicate
// over different aliases must key the same override.
func TestFingerprintBindingIndependent(t *testing.T) {
	md1, _, ids1 := overrideFixture("t")
	md2, _, ids2 := overrideFixture("u") // same table, different alias

	f1 := []logical.Scalar{
		eqConst(ids1[0], 5),
		&logical.Cmp{Op: logical.CmpLt, L: &logical.Col{ID: ids1[1]}, R: &logical.Const{Val: datum.NewInt(9)}},
	}
	// Conjuncts reversed, and the range predicate written constant-first
	// (9 > b normalizes to b < 9).
	f2 := []logical.Scalar{
		&logical.Cmp{Op: logical.CmpGt, L: &logical.Const{Val: datum.NewInt(9)}, R: &logical.Col{ID: ids2[1]}},
		eqConst(ids2[0], 5),
	}
	fp1, ok1 := FingerprintFilters(md1, "t", f1)
	fp2, ok2 := FingerprintFilters(md2, "t", f2)
	if !ok1 || !ok2 {
		t.Fatalf("fingerprints not ok: %v %v", ok1, ok2)
	}
	if fp1 != fp2 {
		t.Errorf("alias/order-dependent fingerprints: %q vs %q", fp1, fp2)
	}
	if fp1 == "" {
		t.Error("non-empty conjunction must not fingerprint to the bare-scan key")
	}

	// IS NULL and IN list forms fingerprint too, canonically.
	f3 := []logical.Scalar{
		&logical.IsNull{E: &logical.Col{ID: ids1[0]}},
		&logical.InList{E: &logical.Col{ID: ids1[1]}, List: []logical.Scalar{
			&logical.Const{Val: datum.NewInt(3)}, &logical.Const{Val: datum.NewInt(1)},
		}},
	}
	f4 := []logical.Scalar{
		&logical.InList{E: &logical.Col{ID: ids2[1]}, List: []logical.Scalar{
			&logical.Const{Val: datum.NewInt(1)}, &logical.Const{Val: datum.NewInt(3)},
		}},
		&logical.IsNull{E: &logical.Col{ID: ids2[0]}},
	}
	fp3, _ := FingerprintFilters(md1, "t", f3)
	fp4, _ := FingerprintFilters(md2, "t", f4)
	if fp3 != fp4 {
		t.Errorf("IS NULL / IN fingerprints differ across aliases: %q vs %q", fp3, fp4)
	}
}

// Predicates that are not simple single-table comparisons — column vs column,
// columns of another table, non-constant IN items — must reject the whole
// conjunction: observations under them are not attributable to (table, pred).
func TestFingerprintRejectsUnattributable(t *testing.T) {
	md, _, ids := overrideFixture("t")
	other := logical.NewMetadata()
	otherTbl := &catalog.Table{Name: "s", Cols: []catalog.Column{{Name: "x", Kind: datum.KindInt}}}
	otherIDs := other.AddTable(otherTbl, "s")
	_ = otherIDs

	cases := map[string][]logical.Scalar{
		"col-vs-col": {&logical.Cmp{Op: logical.CmpEq, L: &logical.Col{ID: ids[0]}, R: &logical.Col{ID: ids[1]}}},
		"wrong-table": {eqConst(ids[0], 1), func() logical.Scalar {
			// a predicate over a column the metadata says belongs to "s"
			sIDs := md.AddTable(otherTbl, "s")
			return eqConst(sIDs[0], 2)
		}()},
		"non-const-in": {&logical.InList{E: &logical.Col{ID: ids[0]}, List: []logical.Scalar{&logical.Col{ID: ids[1]}}}},
	}
	for name, filters := range cases {
		if fp, ok := FingerprintFilters(md, "t", filters); ok {
			t.Errorf("%s: fingerprinted to %q, want rejection", name, fp)
		}
	}
	// Empty conjunction is the bare-scan key.
	if fp, ok := FingerprintFilters(md, "t", nil); !ok || fp != "" {
		t.Errorf("empty conjunction = (%q, %v), want (\"\", true)", fp, ok)
	}
}

// Set reports a material change for new keys and for values that moved by
// more than the material-change factor; small refreshes update silently.
func TestOverridesSetMaterialChange(t *testing.T) {
	o := NewOverrides()
	if !o.Set("t", "#0 = 1:5", 100) {
		t.Error("first Set of a key must be material")
	}
	if o.Set("t", "#0 = 1:5", 110) {
		t.Error("1.1x drift is within the material-change factor")
	}
	if !o.Set("t", "#0 = 1:5", 400) {
		t.Error("3.6x drift must be material")
	}
	if rows, ok := o.Get("t", "#0 = 1:5"); !ok || rows != 400 {
		t.Errorf("Get = (%v, %v), want latest value 400", rows, ok)
	}
	if o.Len() != 1 {
		t.Errorf("Len = %d, want 1", o.Len())
	}
	// Nil store is inert.
	var nilO *Overrides
	if _, ok := nilO.Get("t", ""); ok || nilO.Len() != 0 {
		t.Error("nil Overrides must report nothing")
	}
}

// An override on a filtered scan replaces the estimator's computed row count
// (and clamps distincts), while an estimator without overrides is untouched.
func TestEstimatorConsultsOverrides(t *testing.T) {
	md, tbl, ids := overrideFixture("t")
	tbl.Stats = &catalog.TableStats{RowCount: 1000, PageCount: 10,
		ColStats: map[int]*catalog.ColumnStats{
			0: {DistinctCount: 1000},
			1: {DistinctCount: 50},
		}}
	scan := &logical.Scan{Table: tbl, Binding: "t", Cols: ids}
	sel := &logical.Select{Input: scan, Filters: []logical.Scalar{eqConst(ids[0], 7)}}

	base := NewEstimator(md)
	baseRows := base.Stats(sel).Rows

	ov := NewOverrides()
	fp, ok := FingerprintFilters(md, "t", sel.Filters)
	if !ok {
		t.Fatal("filter should fingerprint")
	}
	ov.Set("t", fp, 400)
	patched := NewEstimator(md)
	patched.Overrides = ov
	got := patched.Stats(sel)
	if got.Rows != 400 {
		t.Errorf("patched estimate = %v, want the observed 400 (unpatched was %v)", got.Rows, baseRows)
	}
	for id, cs := range got.Cols {
		if cs.Distinct > got.Rows {
			t.Errorf("column %d distinct %v exceeds overridden row count %v", id, cs.Distinct, got.Rows)
		}
	}
	// The bare-scan override patches table cardinality.
	ov.Set("t", "", 2500)
	patched2 := NewEstimator(md)
	patched2.Overrides = ov
	if rows := patched2.Stats(scan).Rows; rows != 2500 {
		t.Errorf("bare-scan override = %v, want 2500", rows)
	}
	// A different predicate finds no override and keeps the histogram path.
	sel2 := &logical.Select{Input: scan, Filters: []logical.Scalar{eqConst(ids[1], 7)}}
	patched3 := NewEstimator(md)
	patched3.Overrides = ov
	unpatched := NewEstimator(md)
	// Note: the un-overridden Select sits over a Scan whose bare-scan
	// override (2500) does apply — compare against an estimator seeing the
	// same scan override only.
	unpatchedOv := NewOverrides()
	unpatchedOv.Set("t", "", 2500)
	unpatched.Overrides = unpatchedOv
	if a, b := patched3.Stats(sel2).Rows, unpatched.Stats(sel2).Rows; a != b {
		t.Errorf("unrelated predicate affected by override: %v vs %v", a, b)
	}
}
