package stats

import (
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/logical"
	"repro/internal/sql"
	"repro/internal/storage"
)

// TestSegmentSketchNDVForUncoveredColumn: when the catalog stats row count is
// fresh but a column has no ANALYZE entry (partial stats), the estimator must
// take the column's NDV from the segment footers' distinct sketches instead
// of the assume-all-distinct fallback. With 5 cities over 1000 rows, equality
// should estimate ~200 rows; the old fallback said ~1.
func TestSegmentSketchNDVForUncoveredColumn(t *testing.T) {
	cat := catalog.New()
	store := storage.NewStoreWith(storage.StoreConfig{Dir: t.TempDir(), SegmentRows: 256})
	def := &catalog.Table{
		Name: "Ev",
		Cols: []catalog.Column{
			{Name: "id", Kind: datum.KindInt, NotNull: true},
			{Name: "city", Kind: datum.KindString},
		},
	}
	if err := cat.AddTable(def); err != nil {
		t.Fatal(err)
	}
	tab, err := store.CreateTable(def)
	if err != nil {
		t.Fatal(err)
	}
	cities := []string{"ogdenville", "north-haverbrook", "shelbyville", "capital-city", "springfield"}
	rows := make([]datum.Row, 1000)
	for i := range rows {
		rows[i] = datum.Row{datum.NewInt(int64(i)), datum.NewString(cities[i%len(cities)])}
	}
	if err := tab.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	// Fresh row count, but no per-column stats at all — the shape a manual
	// or partial stats load produces.
	def.Stats = &catalog.TableStats{
		RowCount:  1000,
		PageCount: float64(tab.PageCount()),
		ColStats:  map[int]*catalog.ColumnStats{},
	}

	sel, err := sql.ParseSelect("SELECT id FROM Ev WHERE city = 'shelbyville'")
	if err != nil {
		t.Fatal(err)
	}
	q, err := logical.NewBuilder(cat).Build(sel)
	if err != nil {
		t.Fatal(err)
	}
	logical.NormalizeQuery(q, logical.DefaultNormalize())

	withSketch := NewEstimator(q.Meta)
	withSketch.SegmentStats = func(name string) *catalog.TableStats {
		tb, ok := store.Table(name)
		if !ok {
			return nil
		}
		return SegmentTableStats(tb)
	}
	got := withSketch.Stats(q.Root).Rows
	if got < 100 || got > 400 {
		t.Fatalf("eq rows with sketch NDV = %v, want ~200", got)
	}

	// Control: without segment stats the fallback assumes every row distinct
	// and the estimate collapses toward 1 row.
	without := NewEstimator(q.Meta)
	ctl := without.Stats(q.Root).Rows
	if ctl >= 50 {
		t.Fatalf("control estimate = %v, expected the all-distinct fallback (<50): did the fixture change?", ctl)
	}
	if fmt.Sprint(got) == fmt.Sprint(ctl) {
		t.Fatal("sketch NDV had no effect on the estimate")
	}
}
