package stats

import (
	"math"

	"repro/internal/catalog"
	"repro/internal/storage"
)

// SegmentTableStats synthesizes a coarse catalog.TableStats from the segment
// footers of a disk-backed table: zone-map min/max stand in for the column
// extremes, per-segment distinct sketches are unioned for a distinct estimate,
// and NULL counts sum exactly. It is far cheaper than ANALYZE (no data pages
// are read) and, unlike ANALYZE output, can never be stale — it reflects what
// is actually sealed on disk. Returns nil for in-memory tables or tables with
// no sealed segments.
func SegmentTableStats(tab *storage.Table) *catalog.TableStats {
	_, totalRows, pages, cols, ok := tab.SegmentStats()
	if !ok {
		return nil
	}
	ts := &catalog.TableStats{
		RowCount:  float64(totalRows),
		PageCount: float64(pages),
		ColStats:  make(map[int]*catalog.ColumnStats, len(cols)),
	}
	for ord, cs := range cols {
		c := &catalog.ColumnStats{
			DistinctCount: math.Max(1, cs.Distinct),
			NullCount:     float64(cs.NullCount),
		}
		if cs.HasZone {
			// Zone extremes are true min/max, not second extremes; close
			// enough for range-selectivity fallback when ANALYZE is stale.
			c.SecondMin, c.SecondMax = cs.Min, cs.Max
		}
		ts.ColStats[ord] = c
	}
	return ts
}
