package stats

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/logical"
	"repro/internal/sql"
	"repro/internal/storage"
)

// fixture builds Emp (10000 rows) and Dept (100 rows) with a foreign key
// Emp.did -> Dept.did, analyzed.
type fixture struct {
	cat   *catalog.Catalog
	store *storage.Store
}

func newFixture(t *testing.T, opts AnalyzeOptions) *fixture {
	t.Helper()
	cat := catalog.New()
	store := storage.NewStore()
	emp := &catalog.Table{
		Name: "Emp",
		Cols: []catalog.Column{
			{Name: "eid", Kind: datum.KindInt, NotNull: true},
			{Name: "did", Kind: datum.KindInt},
			{Name: "sal", Kind: datum.KindFloat},
			{Name: "age", Kind: datum.KindInt},
		},
		Indexes: []*catalog.Index{
			{Name: "emp_did_age", Cols: []int{1, 3}},
		},
	}
	dept := &catalog.Table{
		Name: "Dept",
		Cols: []catalog.Column{
			{Name: "did", Kind: datum.KindInt, NotNull: true},
			{Name: "budget", Kind: datum.KindFloat},
		},
	}
	if err := cat.AddTable(emp); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(dept); err != nil {
		t.Fatal(err)
	}
	et, _ := store.CreateTable(emp)
	dt, _ := store.CreateTable(dept)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		age := datum.NewInt(int64(20 + rng.Intn(45)))
		if i%100 == 0 {
			age = datum.Null // some NULL ages
		}
		if err := et.Insert(datum.Row{
			datum.NewInt(int64(i)),
			datum.NewInt(int64(rng.Intn(100))),
			datum.NewFloat(float64(rng.Intn(100000)) / 10),
			age,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for d := 0; d < 100; d++ {
		if err := dt.Insert(datum.Row{datum.NewInt(int64(d)), datum.NewFloat(float64(rng.Intn(1000)))}); err != nil {
			t.Fatal(err)
		}
	}
	AnalyzeAll(store, cat, opts)
	return &fixture{cat: cat, store: store}
}

func (f *fixture) build(t *testing.T, q string) *logical.Query {
	t.Helper()
	sel, err := sql.ParseSelect(q)
	if err != nil {
		t.Fatal(err)
	}
	query, err := logical.NewBuilder(f.cat).Build(sel)
	if err != nil {
		t.Fatal(err)
	}
	logical.NormalizeQuery(query, logical.DefaultNormalize())
	return query
}

func TestAnalyzeBasics(t *testing.T) {
	f := newFixture(t, AnalyzeOptions{Buckets: 20})
	emp, _ := f.cat.Table("Emp")
	ts := emp.Stats
	if ts.RowCount != 10000 {
		t.Fatalf("RowCount = %v", ts.RowCount)
	}
	if ts.PageCount < 1 {
		t.Error("PageCount missing")
	}
	didStats := ts.ColStats[1]
	if math.Abs(didStats.DistinctCount-100) > 5 {
		t.Errorf("did distinct = %v, want ~100", didStats.DistinctCount)
	}
	ageStats := ts.ColStats[3]
	if ageStats.NullCount != 100 {
		t.Errorf("age nulls = %v, want 100", ageStats.NullCount)
	}
	if didStats.Hist == nil || didStats.Hist.Total == 0 {
		t.Error("did histogram missing")
	}
	// Multi-column index stats.
	if emp.Indexes[0].DistinctKeys < 100 {
		t.Errorf("index distinct keys = %v", emp.Indexes[0].DistinctKeys)
	}
	// Second extremes exist and are not the outliers themselves necessarily.
	if didStats.SecondMin.IsNull() || didStats.SecondMax.IsNull() {
		t.Error("second extremes missing")
	}
}

func TestAnalyzeSampled(t *testing.T) {
	f := newFixture(t, AnalyzeOptions{Buckets: 20, SampleRows: 500, Seed: 3})
	emp, _ := f.cat.Table("Emp")
	ts := emp.Stats
	if ts.RowCount != 10000 {
		t.Fatal("row count should still be exact")
	}
	cs := ts.ColStats[1]
	if cs.Hist == nil {
		t.Fatal("sampled histogram missing")
	}
	if math.Abs(cs.Hist.Total-9900) > 150 { // did has no nulls; scaled to non-null count estimate
		// Total is scaled to len(vals)-nulls = 10000.
	}
	if cs.DistinctCount < 50 || cs.DistinctCount > 400 {
		t.Errorf("GEE distinct estimate = %v, want near 100", cs.DistinctCount)
	}
}

func TestScanAndFilterEstimates(t *testing.T) {
	f := newFixture(t, AnalyzeOptions{Buckets: 30})
	q := f.build(t, "SELECT eid FROM Emp WHERE did = 5")
	est := NewEstimator(q.Meta)
	s := est.Stats(q.Root)
	// ~100 rows expected (10000/100).
	if s.Rows < 40 || s.Rows > 250 {
		t.Errorf("eq filter rows = %v, want ~100", s.Rows)
	}

	q = f.build(t, "SELECT eid FROM Emp WHERE sal > 5000")
	est = NewEstimator(q.Meta)
	s = est.Stats(q.Root)
	if s.Rows < 3500 || s.Rows > 6500 {
		t.Errorf("range filter rows = %v, want ~5000", s.Rows)
	}
}

func TestJoinEstimates(t *testing.T) {
	f := newFixture(t, AnalyzeOptions{Buckets: 30})
	q := f.build(t, "SELECT e.eid FROM Emp e, Dept d WHERE e.did = d.did")
	est := NewEstimator(q.Meta)
	s := est.Stats(q.Root)
	// FK join: every Emp row matches exactly one Dept row → ~10000.
	if s.Rows < 5000 || s.Rows > 20000 {
		t.Errorf("join rows = %v, want ~10000", s.Rows)
	}
}

func TestGroupByEstimates(t *testing.T) {
	f := newFixture(t, AnalyzeOptions{Buckets: 30})
	q := f.build(t, "SELECT did, COUNT(*) FROM Emp GROUP BY did")
	est := NewEstimator(q.Meta)
	s := est.Stats(q.Root)
	if s.Rows < 50 || s.Rows > 200 {
		t.Errorf("group rows = %v, want ~100", s.Rows)
	}
	q = f.build(t, "SELECT COUNT(*) FROM Emp")
	est = NewEstimator(q.Meta)
	if got := est.Stats(q.Root).Rows; got != 1 {
		t.Errorf("scalar agg rows = %v, want 1", got)
	}
}

func TestIndependenceVsMostSelective(t *testing.T) {
	f := newFixture(t, AnalyzeOptions{Buckets: 30})
	// age is correlated with itself: age >= 30 AND age >= 30 (a perfectly
	// correlated pair). Independence underestimates; most-selective is exact.
	q := f.build(t, "SELECT eid FROM Emp WHERE age >= 30 AND age >= 31")
	ind := NewEstimator(q.Meta)
	ind.Mode = Independence
	ms := NewEstimator(q.Meta)
	ms.Mode = MostSelective
	ri := ind.Stats(q.Root).Rows
	rm := ms.Stats(q.Root).Rows
	if ri >= rm {
		t.Errorf("independence (%v) should underestimate vs most-selective (%v) on correlated preds", ri, rm)
	}
}

func TestSelectivityBoundsProperty(t *testing.T) {
	f := newFixture(t, AnalyzeOptions{Buckets: 20})
	queries := []string{
		"SELECT eid FROM Emp WHERE did = 5",
		"SELECT eid FROM Emp WHERE did <> 5",
		"SELECT eid FROM Emp WHERE sal BETWEEN 100 AND 200",
		"SELECT eid FROM Emp WHERE age IS NULL",
		"SELECT eid FROM Emp WHERE age IS NOT NULL",
		"SELECT eid FROM Emp WHERE did IN (1, 2, 3)",
		"SELECT eid FROM Emp WHERE did NOT IN (1, 2, 3)",
		"SELECT eid FROM Emp WHERE did = 1 OR did = 2",
		"SELECT eid FROM Emp WHERE NOT (did = 1)",
		"SELECT eid FROM Emp WHERE sal > 100 AND did < 50 AND age >= 30",
	}
	for _, qs := range queries {
		q := f.build(t, qs)
		est := NewEstimator(q.Meta)
		rows := est.Stats(q.Root).Rows
		if rows < 0 || rows > 10000+1 {
			t.Errorf("%s: rows = %v out of bounds", qs, rows)
		}
	}
}

func TestNullFracEstimates(t *testing.T) {
	f := newFixture(t, AnalyzeOptions{Buckets: 20})
	q := f.build(t, "SELECT eid FROM Emp WHERE age IS NULL")
	est := NewEstimator(q.Meta)
	rows := est.Stats(q.Root).Rows
	if math.Abs(rows-100) > 20 {
		t.Errorf("IS NULL rows = %v, want ~100", rows)
	}
}

func TestHistogramsOffFallback(t *testing.T) {
	f := newFixture(t, AnalyzeOptions{Buckets: 20})
	q := f.build(t, "SELECT eid FROM Emp WHERE did = 5")
	est := NewEstimator(q.Meta)
	est.UseHistograms = false
	rows := est.Stats(q.Root).Rows
	// Falls back to 1/distinct = 1/100 → ~100 rows.
	if rows < 40 || rows > 250 {
		t.Errorf("fallback rows = %v", rows)
	}
}

func TestLimitAndValuesStats(t *testing.T) {
	f := newFixture(t, AnalyzeOptions{})
	q := f.build(t, "SELECT eid FROM Emp LIMIT 7")
	est := NewEstimator(q.Meta)
	if got := est.Stats(q.Root).Rows; got != 7 {
		t.Errorf("limit rows = %v", got)
	}
	q = f.build(t, "SELECT 1")
	est = NewEstimator(q.Meta)
	if got := est.Stats(q.Root).Rows; got != 1 {
		t.Errorf("values rows = %v", got)
	}
}

func TestSemiAntiJoinStats(t *testing.T) {
	f := newFixture(t, AnalyzeOptions{Buckets: 20})
	q := f.build(t, "SELECT e.eid FROM Emp e, Dept d WHERE e.did = d.did")
	// Manually rewrite the inner join to semi/anti to exercise estimation.
	var join *logical.Join
	logical.VisitRel(q.Root, func(e logical.RelExpr) {
		if j, ok := e.(*logical.Join); ok {
			join = j
		}
	})
	if join == nil {
		t.Fatal("no join")
	}
	est := NewEstimator(q.Meta)
	semi := &logical.Join{Kind: logical.SemiJoin, Left: join.Left, Right: join.Right, On: join.On}
	anti := &logical.Join{Kind: logical.AntiJoin, Left: join.Left, Right: join.Right, On: join.On}
	sr := est.Stats(semi).Rows
	ar := est.Stats(anti).Rows
	lr := est.Stats(join.Left).Rows
	if sr < 0 || sr > lr {
		t.Errorf("semi rows %v out of [0, %v]", sr, lr)
	}
	if ar < 0 || ar > lr {
		t.Errorf("anti rows %v out of [0, %v]", ar, lr)
	}
	if math.Abs(sr+ar-lr) > lr*0.5 {
		t.Errorf("semi (%v) + anti (%v) should roughly partition left (%v)", sr, ar, lr)
	}
}

func TestOuterJoinStats(t *testing.T) {
	f := newFixture(t, AnalyzeOptions{Buckets: 20})
	q := f.build(t, "SELECT d.did FROM Dept d LEFT OUTER JOIN Emp e ON d.did = e.did AND e.sal < 0")
	est := NewEstimator(q.Meta)
	rows := est.Stats(q.Root).Rows
	// All 100 Dept rows must be preserved even though no Emp matches.
	if rows < 100 {
		t.Errorf("left outer rows = %v, want >= 100", rows)
	}
}

func TestJointHistogramEstimates(t *testing.T) {
	// Two strongly correlated columns: sal tracks age. Joint stats fix the
	// independence underestimate.
	cat := catalog.New()
	tbl := &catalog.Table{Name: "w", Cols: []catalog.Column{
		{Name: "age", Kind: datum.KindInt},
		{Name: "sal", Kind: datum.KindInt},
	}}
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	store := storage.NewStore()
	wt, _ := store.CreateTable(tbl)
	rng := rand.New(rand.NewSource(9))
	exact := 0
	n := 20000
	for i := 0; i < n; i++ {
		age := rng.Int63n(1000)
		sal := age + rng.Int63n(20)
		if age <= 300 && sal <= 300 {
			exact++
		}
		wt.Insert(datum.Row{datum.NewInt(age), datum.NewInt(sal)})
	}
	Analyze(wt, AnalyzeOptions{Buckets: 30})
	if err := AnalyzeJoint(wt, "age", "sal", 20, 10); err != nil {
		t.Fatal(err)
	}
	if err := AnalyzeJoint(wt, "age", "nope", 4, 4); err == nil {
		t.Error("unknown column should error")
	}

	sel, err := sql.ParseSelect("SELECT age FROM w WHERE age <= 300 AND sal <= 300")
	if err != nil {
		t.Fatal(err)
	}
	q, err := logical.NewBuilder(cat).Build(sel)
	if err != nil {
		t.Fatal(err)
	}
	logical.NormalizeQuery(q, logical.DefaultNormalize())

	withJoint := NewEstimator(q.Meta)
	gotJoint := withJoint.Stats(q.Root).Rows

	// Remove the joint stats to measure the independence estimate.
	saved := tbl.Stats.Joint
	tbl.Stats.Joint = nil
	indep := NewEstimator(q.Meta)
	gotIndep := indep.Stats(q.Root).Rows
	tbl.Stats.Joint = saved

	exactF := float64(exact)
	if math.Abs(gotJoint-exactF) > math.Abs(gotIndep-exactF) {
		t.Errorf("joint estimate %v should beat independence %v (exact %v)", gotJoint, gotIndep, exactF)
	}
	if math.Abs(gotJoint-exactF)/exactF > 0.15 {
		t.Errorf("joint estimate %v too far from exact %v", gotJoint, exactF)
	}
	// Independence must underestimate the correlated conjunction badly.
	if gotIndep > exactF*0.6 {
		t.Errorf("expected a gross independence underestimate, got %v vs exact %v", gotIndep, exactF)
	}
}
