package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
)

// sealedReprs seals rows into exactly one segment and returns the per-column
// block representations from the decoded footer, plus the table for reads.
func sealedReprs(t *testing.T, def *catalog.Table, rows []datum.Row, cfg StoreConfig) (*Table, []byte) {
	t.Helper()
	if cfg.SegmentRows == 0 {
		cfg.SegmentRows = len(rows)
	}
	s := NewStoreWith(cfg)
	tab, err := s.CreateTable(def)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	return tab, segReprs(t, cfg.Dir, def.Name, 0, 0)
}

// segReprs reads one sealed segment file and returns each column's repr byte.
func segReprs(t *testing.T, dir, table string, gen, id int) []byte {
	t.Helper()
	path := filepath.Join(dir, table, segFileName(gen, id))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := decodeFooter(raw, path)
	if err != nil {
		t.Fatal(err)
	}
	reprs := make([]byte, len(sm.cols))
	for i := range sm.cols {
		reprs[i] = sm.cols[i].repr
	}
	return reprs
}

// roundTrip reads every row back and compares datum-by-datum with bit-exact
// semantics (Compare distinguishes nothing a query could; IsNull + Compare
// suffice because inserts were canonical values).
func roundTrip(t *testing.T, tab *Table, want []datum.Row) {
	t.Helper()
	got, err := tab.Rows(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round-trip rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			a, b := want[i][j], got[i][j]
			if a.IsNull() != b.IsNull() || (!a.IsNull() && datum.Compare(a, b) != 0) {
				t.Fatalf("row %d col %d: got %v, want %v", i, j, b, a)
			}
		}
	}
}

func oneStrCol(name string) *catalog.Table {
	return &catalog.Table{Name: name, Cols: []catalog.Column{{Name: "s", Kind: datum.KindString}}}
}

// TestEncodingEdgeCases pins the seal-time encoding decision and its
// round-trip on the format's corner shapes.
func TestEncodingEdgeCases(t *testing.T) {
	strRow := func(s string) datum.Row { return datum.Row{datum.NewString(s)} }

	t.Run("all-null-long", func(t *testing.T) {
		// 128 NULLs form one run: run-length wins even on a string column.
		rows := make([]datum.Row, 128)
		for i := range rows {
			rows[i] = datum.Row{datum.Null}
		}
		tab, reprs := sealedReprs(t, oneStrCol("an"), rows, StoreConfig{Dir: t.TempDir()})
		if reprs[0] != reprRLE {
			t.Fatalf("repr = %d, want RLE", reprs[0])
		}
		roundTrip(t, tab, rows)
	})

	t.Run("all-null-short", func(t *testing.T) {
		// 32 rows is below the RLE floor and has no non-NULL values to build
		// a dictionary from: plain encoding is the only sound choice.
		rows := make([]datum.Row, 32)
		for i := range rows {
			rows[i] = datum.Row{datum.Null}
		}
		tab, reprs := sealedReprs(t, oneStrCol("ans"), rows, StoreConfig{Dir: t.TempDir()})
		if reprs[0] != reprTyped {
			t.Fatalf("repr = %d, want plain typed", reprs[0])
		}
		roundTrip(t, tab, rows)
	})

	t.Run("empty-strings", func(t *testing.T) {
		// "" is a legal dictionary entry and must stay distinct from NULL.
		rows := make([]datum.Row, 120)
		for i := range rows {
			switch i % 3 {
			case 0:
				rows[i] = strRow("")
			case 1:
				rows[i] = strRow("nonempty")
			default:
				rows[i] = datum.Row{datum.Null}
			}
		}
		tab, reprs := sealedReprs(t, oneStrCol("es"), rows, StoreConfig{Dir: t.TempDir()})
		if reprs[0] != reprDict {
			t.Fatalf("repr = %d, want dict", reprs[0])
		}
		roundTrip(t, tab, rows)
	})

	t.Run("single-value-long", func(t *testing.T) {
		// One value repeated 128 times is one run: RLE beats a 1-entry dict.
		rows := make([]datum.Row, 128)
		for i := range rows {
			rows[i] = strRow("only")
		}
		tab, reprs := sealedReprs(t, oneStrCol("sv"), rows, StoreConfig{Dir: t.TempDir()})
		if reprs[0] != reprRLE {
			t.Fatalf("repr = %d, want RLE", reprs[0])
		}
		roundTrip(t, tab, rows)
	})

	t.Run("single-value-alternating-null", func(t *testing.T) {
		// NULL interleaving breaks the runs; a 1-entry dictionary carries the
		// value and the NULL bitmap carries the rest.
		rows := make([]datum.Row, 128)
		for i := range rows {
			if i%2 == 0 {
				rows[i] = strRow("only")
			} else {
				rows[i] = datum.Row{datum.Null}
			}
		}
		tab, reprs := sealedReprs(t, oneStrCol("svn"), rows, StoreConfig{Dir: t.TempDir()})
		if reprs[0] != reprDict {
			t.Fatalf("repr = %d, want dict", reprs[0])
		}
		roundTrip(t, tab, rows)
	})

	// The dictionary threshold is an exact distinct count: 256 encodes, 257
	// does not. Values rotate every row so RLE never competes.
	for _, tc := range []struct {
		ndv  int
		want byte
	}{{256, reprDict}, {257, reprTyped}} {
		t.Run(fmt.Sprintf("ndv-%d", tc.ndv), func(t *testing.T) {
			rows := make([]datum.Row, 1024)
			for i := range rows {
				rows[i] = strRow(fmt.Sprintf("value-%03d", i%tc.ndv))
			}
			tab, reprs := sealedReprs(t, oneStrCol("nd"), rows, StoreConfig{Dir: t.TempDir()})
			if reprs[0] != tc.want {
				t.Fatalf("ndv %d: repr = %d, want %d", tc.ndv, reprs[0], tc.want)
			}
			roundTrip(t, tab, rows)
		})
	}

	t.Run("disable-compression", func(t *testing.T) {
		rows := make([]datum.Row, 128)
		for i := range rows {
			rows[i] = strRow("only")
		}
		tab, reprs := sealedReprs(t, oneStrCol("dc"), rows,
			StoreConfig{Dir: t.TempDir(), DisableCompression: true})
		if reprs[0] != reprTyped {
			t.Fatalf("repr = %d, want plain typed under DisableCompression", reprs[0])
		}
		roundTrip(t, tab, rows)
	})
}

// TestRLEAfterSortBy: a shuffled low-cardinality column seals as dictionary
// or plain blocks, but after SortBy physically reorders the heap the rewrite
// re-runs the encoder and the now-constant runs seal as RLE.
func TestRLEAfterSortBy(t *testing.T) {
	dir := t.TempDir()
	def := &catalog.Table{Name: "sb", Cols: []catalog.Column{
		{Name: "k", Kind: datum.KindInt},
		{Name: "s", Kind: datum.KindString},
	}}
	s := NewStoreWith(StoreConfig{Dir: dir, SegmentRows: 256})
	tab, err := s.CreateTable(def)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]datum.Row, 256)
	for i := range rows {
		// 4 values scattered by a stride co-prime with the row count: runs of
		// length 1, so the unsorted seal cannot pick RLE.
		v := int64(i*37%4) + 10
		rows[i] = datum.Row{datum.NewInt(v), datum.NewString(fmt.Sprintf("city-%d", v))}
	}
	if err := tab.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	before := segReprs(t, dir, "sb", 0, 0)
	if before[0] == reprRLE || before[1] == reprRLE {
		t.Fatalf("unsorted seal picked RLE: %v", before)
	}
	if err := tab.SortBy([]datum.SortSpec{{Col: 0}}); err != nil {
		t.Fatal(err)
	}
	after := segReprs(t, dir, "sb", 1, 0)
	if after[0] != reprRLE || after[1] != reprRLE {
		t.Fatalf("sorted seal reprs = %v, want RLE for both columns", after)
	}
	sorted, err := tab.Rows(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sorted); i++ {
		if datum.Compare(sorted[i-1][0], sorted[i][0]) > 0 {
			t.Fatalf("rows not sorted at %d: %v > %v", i, sorted[i-1][0], sorted[i][0])
		}
	}
}

// TestCacheChargesStringPayload: the LRU charge for a cached string column
// follows the actual payload. A column of 400-byte strings must charge far
// more than the same row count of 1-byte strings — under the old flat
// 8-bytes-per-row model both charged the same and big string columns blew
// through the budget unaccounted.
func TestCacheChargesStringPayload(t *testing.T) {
	charge := func(width int) int64 {
		dir := t.TempDir()
		s := NewStoreWith(StoreConfig{Dir: dir, SegmentRows: 256, DisableCompression: true})
		tab, err := s.CreateTable(oneStrCol("cw"))
		if err != nil {
			t.Fatal(err)
		}
		rows := make([]datum.Row, 256)
		for i := range rows {
			// Distinct per row so dictionary encoding could never dedupe it.
			rows[i] = datum.Row{datum.NewString(strings.Repeat("x", width-1) + string(rune('a'+i%26)))}
		}
		if err := tab.InsertBatch(rows); err != nil {
			t.Fatal(err)
		}
		v := datum.NewVec(datum.KindString, 256)
		if err := tab.FillColumnRange(nil, 0, 0, 256, v); err != nil {
			t.Fatal(err)
		}
		c := tab.cache()
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.size
	}
	narrow := charge(1)
	wide := charge(400)
	if narrow <= 0 || wide <= 0 {
		t.Fatalf("no cache charge recorded: narrow=%d wide=%d", narrow, wide)
	}
	// 400x the payload must charge at least 10x — flat per-row charges fail.
	if wide < 10*narrow {
		t.Fatalf("cache charge does not scale with payload: narrow=%d wide=%d", narrow, wide)
	}
}

// TestDictCacheCharge: a dictionary-encoded cached column charges codes plus
// one copy of the dictionary, not the materialized strings — the whole point
// of caching the encoded form.
func TestDictCacheCharge(t *testing.T) {
	dir := t.TempDir()
	s := NewStoreWith(StoreConfig{Dir: dir, SegmentRows: 1024})
	tab, err := s.CreateTable(oneStrCol("dcc"))
	if err != nil {
		t.Fatal(err)
	}
	long := strings.Repeat("metropolitan-", 10)
	rows := make([]datum.Row, 1024)
	for i := range rows {
		rows[i] = datum.Row{datum.NewString(fmt.Sprintf("%s%d", long, i%3))}
	}
	if err := tab.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	if reprs := segReprs(t, dir, "dcc", 0, 0); reprs[0] != reprDict {
		t.Fatalf("repr = %d, want dict", reprs[0])
	}
	v := datum.NewVec(datum.KindString, 1024)
	if err := tab.FillColumnRange(nil, 0, 0, 1024, v); err != nil {
		t.Fatal(err)
	}
	c := tab.cache()
	c.mu.Lock()
	size := c.size
	c.mu.Unlock()
	materialized := int64(1024 * (16 + len(long) + 1))
	if size >= materialized/4 {
		t.Fatalf("dict column charged %d bytes, want well under materialized %d", size, materialized)
	}
}
