package storage

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
)

// corruptDef covers every block representation the format can write: typed
// int (with NULLs), float, string and bool blocks, plus a mixed-kind column
// that forces the boxed representation.
func corruptDef(name string) *catalog.Table {
	return &catalog.Table{
		Name: name,
		Cols: []catalog.Column{
			{Name: "i", Kind: datum.KindInt},
			{Name: "f", Kind: datum.KindFloat},
			{Name: "s", Kind: datum.KindString},
			{Name: "b", Kind: datum.KindBool},
			{Name: "m", Kind: datum.KindInt}, // mixed int/float → boxed block
		},
	}
}

func corruptRows(n int) []datum.Row {
	rows := make([]datum.Row, n)
	for i := range rows {
		r := datum.Row{
			datum.NewInt(int64(i * 3)),
			datum.NewFloat(float64(i) * 0.25),
			datum.NewString(string(rune('a' + i%26))),
			datum.NewBool(i%2 == 0),
			datum.NewInt(int64(i)),
		}
		if i%4 == 0 {
			r[0] = datum.Null // NULLs in column i → a bitmap to corrupt
		}
		if i%2 == 1 {
			r[4] = datum.NewFloat(float64(i) + 0.5) // mixed kinds → boxed
		}
		rows[i] = r
	}
	return rows
}

// footerZoneOffset walks the encoded footer to the first byte of a zone-map
// min datum, returning its offset within the file, or -1.
func footerZoneOffset(raw []byte) int64 {
	tail := len(segMagic) + 8
	footerLen := int(binary.LittleEndian.Uint32(raw[len(raw)-tail+4 : len(raw)-len(segMagic)]))
	footerOff := len(raw) - tail - footerLen
	r := &byteReader{b: raw[footerOff : footerOff+footerLen]}
	if _, err := r.uvarint(); err != nil {
		return -1
	}
	ncols, err := r.uvarint()
	if err != nil {
		return -1
	}
	for ci := 0; ci < int(ncols); ci++ {
		r.off += 2 // repr, kind
		r.uvarint()
		r.uvarint()
		r.take(4)
		r.uvarint()
		hz, err := r.ReadByte()
		if err != nil {
			return -1
		}
		if hz != 0 {
			return int64(footerOff + r.off) // first byte of the min datum
		}
		r.take(sketchBytes)
	}
	return -1
}

// TestCorruptionMatrix bit-flips one byte in every region class of a segment
// file — magic, footer, zone map, NULL bitmap, and each column-block kind —
// and asserts ScrubDir reports exactly that corruption with correct
// coordinates while the unaffected segments still serve reads.
func TestCorruptionMatrix(t *testing.T) {
	dir := t.TempDir()
	s := NewStoreWith(StoreConfig{Dir: dir, SegmentRows: 8})
	tab, err := s.CreateTable(corruptDef("cm"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.InsertBatch(corruptRows(24)); err != nil { // 3 segments
		t.Fatal(err)
	}
	const victim = 1 // corrupt the middle segment; 0 and 2 must keep serving
	path := filepath.Join(dir, "cm", segFileName(0, victim))
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := decodeFooter(orig, path)
	if err != nil {
		t.Fatal(err)
	}
	blockFlip := func(cm *colMeta, delta int64) int64 { return cm.off + delta }
	cases := []struct {
		name   string
		offset int64
		region string
		column int
	}{
		// The flip hits the first magic byte: flipping the last one would turn
		// the version digit '3' into '2' — a still-accepted older version.
		{"magic", int64(len(orig) - len(segMagic)), RegionMagic, -1},
		{"footer-rows", 0, RegionFooter, -1}, // offset computed below
		{"zone-map", footerZoneOffset(orig), RegionFooter, -1},
		{"null-bitmap", blockFlip(&sm.cols[0], 4), RegionBlock, 0}, // repr+kind+uvarint(n)+uvarint(nn) → bitmap
		{"int-block", blockFlip(&sm.cols[0], sm.cols[0].blockLen-1), RegionBlock, 0},
		{"float-block", blockFlip(&sm.cols[1], sm.cols[1].blockLen-1), RegionBlock, 1},
		{"string-block", blockFlip(&sm.cols[2], sm.cols[2].blockLen-1), RegionBlock, 2},
		{"bool-block", blockFlip(&sm.cols[3], sm.cols[3].blockLen-1), RegionBlock, 3},
		{"boxed-block", blockFlip(&sm.cols[4], sm.cols[4].blockLen-1), RegionBlock, 4},
	}
	// footer-rows: first byte of the footer (the rows uvarint).
	tail := int64(len(segMagic) + 8)
	footerLen := int64(binary.LittleEndian.Uint32(orig[int64(len(orig))-tail+4 : len(orig)-len(segMagic)]))
	cases[1].offset = int64(len(orig)) - tail - footerLen

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.offset < 0 || tc.offset >= int64(len(orig)) {
				t.Fatalf("bad flip offset %d", tc.offset)
			}
			mut := append([]byte(nil), orig...)
			mut[tc.offset] ^= 0x01
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := os.WriteFile(path, orig, 0o644); err != nil {
					t.Fatal(err)
				}
			}()
			found, err := ScrubDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(found) != 1 {
				t.Fatalf("scrub found %d corruptions, want exactly 1: %v", len(found), found)
			}
			ce := found[0]
			if ce.Table != "cm" || ce.Segment != victim {
				t.Fatalf("corruption located at table %q segment %d, want cm/%d", ce.Table, ce.Segment, victim)
			}
			if ce.Region != tc.region || ce.Column != tc.column {
				t.Fatalf("corruption classified as (%s, col %d), want (%s, col %d): %v",
					ce.Region, ce.Column, tc.region, tc.column, ce)
			}
			// A fresh store over the damaged directory soft-adopts the victim:
			// its neighbors still serve their full row ranges.
			s2 := NewStoreWith(StoreConfig{Dir: dir, SegmentRows: 8})
			tab2, err := s2.CreateTable(corruptDef("cm"))
			if err != nil {
				t.Fatalf("open with damaged segment: %v", err)
			}
			if rows, err := tab2.RowsRange(nil, 0, 8); err != nil || len(rows) != 8 {
				t.Fatalf("segment 0 should serve: rows=%d err=%v", len(rows), err)
			}
			if rows, err := tab2.RowsRange(nil, 16, 24); err != nil || len(rows) != 8 {
				t.Fatalf("segment 2 should serve: rows=%d err=%v", len(rows), err)
			}
			if _, err := tab2.RowsRange(nil, 8, 16); err == nil {
				t.Fatal("reading the damaged segment should fail")
			}
			// The live store's Scrub agrees with the offline ScrubDir.
			live := s2.Scrub()
			if len(live) != 1 || live[0].Region != tc.region || live[0].Column != tc.column {
				t.Fatalf("live Scrub = %v, want one (%s, col %d)", live, tc.region, tc.column)
			}
		})
	}
	// With the original bytes restored, everything scrubs clean again.
	if found, err := ScrubDir(dir); err != nil || len(found) != 0 {
		t.Fatalf("restored directory should scrub clean: %v %v", found, err)
	}
}

// TestCorruptionMatrixEncoded extends the byte-flip matrix to the compressed
// block representations: a dictionary-encoded string column and a run-length
// encoded int column, each flipped both near the block header (dictionary
// entries / run headers) and at the block tail (codes / last run). Scrub must
// localize every flip to (RegionBlock, exact column) on the exact segment.
func TestCorruptionMatrixEncoded(t *testing.T) {
	dir := t.TempDir()
	s := NewStoreWith(StoreConfig{Dir: dir, SegmentRows: 64})
	def := &catalog.Table{Name: "ce", Cols: []catalog.Column{
		{Name: "d", Kind: datum.KindString}, // 4 values alternating → dict
		{Name: "r", Kind: datum.KindInt},    // constant → one run
	}}
	tab, err := s.CreateTable(def)
	if err != nil {
		t.Fatal(err)
	}
	cities := []string{"ogdenville", "north-haverbrook", "shelbyville", "capital-city"}
	rows := make([]datum.Row, 192) // 3 segments of 64
	for i := range rows {
		rows[i] = datum.Row{datum.NewString(cities[i%len(cities)]), datum.NewInt(7)}
	}
	if err := tab.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	const victim = 1
	path := filepath.Join(dir, "ce", segFileName(0, victim))
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := decodeFooter(orig, path)
	if err != nil {
		t.Fatal(err)
	}
	if sm.cols[0].repr != reprDict || sm.cols[1].repr != reprRLE {
		t.Fatalf("reprs = %d,%d, want dict,rle", sm.cols[0].repr, sm.cols[1].repr)
	}
	cases := []struct {
		name   string
		offset int64
		column int
	}{
		// +4 lands just past repr+kind+uvarint(n)+uvarint(numNulls): the
		// dictionary entry table / the first run header.
		{"dict-block-header", sm.cols[0].off + 4, 0},
		{"dict-block-codes", sm.cols[0].off + sm.cols[0].blockLen - 1, 0},
		{"run-block-header", sm.cols[1].off + 4, 1},
		{"run-block-tail", sm.cols[1].off + sm.cols[1].blockLen - 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := append([]byte(nil), orig...)
			mut[tc.offset] ^= 0x01
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := os.WriteFile(path, orig, 0o644); err != nil {
					t.Fatal(err)
				}
			}()
			found, err := ScrubDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(found) != 1 {
				t.Fatalf("scrub found %d corruptions, want exactly 1: %v", len(found), found)
			}
			ce := found[0]
			if ce.Table != "ce" || ce.Segment != victim || ce.Region != RegionBlock || ce.Column != tc.column {
				t.Fatalf("corruption located at (%s, seg %d, %s, col %d), want (ce, %d, %s, col %d)",
					ce.Table, ce.Segment, ce.Region, ce.Column, victim, RegionBlock, tc.column)
			}
			// Neighbors still serve; the damaged segment refuses reads.
			s2 := NewStoreWith(StoreConfig{Dir: dir, SegmentRows: 64})
			tab2, err := s2.CreateTable(def)
			if err != nil {
				t.Fatalf("open with damaged segment: %v", err)
			}
			if got, err := tab2.RowsRange(nil, 0, 64); err != nil || len(got) != 64 {
				t.Fatalf("segment 0 should serve: rows=%d err=%v", len(got), err)
			}
			if _, err := tab2.RowsRange(nil, 64, 128); err == nil {
				t.Fatal("reading the damaged segment should fail")
			}
		})
	}
	if found, err := ScrubDir(dir); err != nil || len(found) != 0 {
		t.Fatalf("restored directory should scrub clean: %v %v", found, err)
	}
}
