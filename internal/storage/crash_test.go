package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/datum"
	"repro/internal/faultfs"
)

// crashOps is every durability-relevant injection site of the write path, in
// protocol order. The matrix below kills each one at every occurrence.
var crashOps = []string{
	"segment.create", "segment.write", "segment.writefile",
	"segment.fsync", "segment.rename", "dir.fsync",
	"manifest.append", "manifest.fsync",
}

// diskState captures the manifest-visible on-disk state of one table: the
// generation plus the exact bytes of every adopted segment file. Two equal
// states are bit-identical in everything the manifest publishes.
func diskState(t *testing.T, dir, table string) (int, map[string][]byte) {
	t.Helper()
	ms, _, err := replayManifest(filepath.Join(dir, table, manifestName), false)
	if err != nil {
		t.Fatalf("replaying manifest of %s: %v", table, err)
	}
	files := make(map[string][]byte, len(ms.entries))
	for _, e := range ms.entries {
		raw, err := os.ReadFile(filepath.Join(dir, table, e.file))
		if err != nil {
			t.Fatalf("reading %s: %v", e.file, err)
		}
		files[e.file] = raw
	}
	return ms.gen, files
}

func sameDiskState(genA int, a map[string][]byte, genB int, b map[string][]byte) bool {
	if genA != genB || len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if !bytes.Equal(b[k], v) {
			return false
		}
	}
	return true
}

// runCrashMatrix drives one scenario through every crash point: a dry run
// counts how often each fault site fires during the operation (on top of an
// identical setup), then each (site, occurrence) pair — plus a torn-write
// variant at the sites that support one — gets a fresh directory, a
// simulated crash at exactly that point, a reopen, and the assertion that
// the recovered state is bit-identical to the pre-operation or
// post-operation reference, never a hybrid, with a clean scrub.
func runCrashMatrix(t *testing.T, setup, op func(*Table) error) {
	mk := func(dir string, in *faultfs.Injector) *Table {
		t.Helper()
		s := NewStoreWith(StoreConfig{Dir: dir, SegmentRows: 8, Faults: in})
		tab, err := s.CreateTable(wideDef("t"))
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	preDir, postDir := t.TempDir(), t.TempDir()
	preTab := mk(preDir, nil)
	if err := setup(preTab); err != nil {
		t.Fatal(err)
	}
	preGen, preFiles := diskState(t, preDir, "t")
	postTab := mk(postDir, nil)
	if err := setup(postTab); err != nil {
		t.Fatal(err)
	}
	if err := op(postTab); err != nil {
		t.Fatal(err)
	}
	postGen, postFiles := diskState(t, postDir, "t")

	// Dry run: count per-site occurrences during setup and operation.
	counter := faultfs.New()
	dryTab := mk(t.TempDir(), counter)
	if err := setup(dryTab); err != nil {
		t.Fatal(err)
	}
	base := make(map[string]int64, len(crashOps))
	for _, site := range crashOps {
		base[site] = counter.Count(site)
	}
	if err := op(dryTab); err != nil {
		t.Fatal(err)
	}

	points := 0
	for _, site := range crashOps {
		delta := counter.Count(site) - base[site]
		variants := []bool{false}
		if site == "segment.writefile" || site == "manifest.append" {
			variants = []bool{false, true} // clean kill and torn write
		}
		for k := int64(1); k <= delta; k++ {
			for _, partial := range variants {
				points++
				dir := t.TempDir()
				inj := faultfs.New(faultfs.Rule{Op: site, After: base[site] + k, Partial: partial})
				tab := mk(dir, inj)
				if err := setup(tab); err != nil {
					t.Fatalf("%s#%d: setup tripped the crash rule early: %v", site, k, err)
				}
				if err := op(tab); err == nil {
					t.Fatalf("%s#%d: injected crash did not surface", site, k)
				}
				// The process "died"; reopen the directory fault-free.
				s2 := NewStoreWith(StoreConfig{Dir: dir, SegmentRows: 8})
				if _, err := s2.CreateTable(wideDef("t")); err != nil {
					t.Fatalf("%s#%d (partial=%v): recovery failed: %v", site, k, partial, err)
				}
				gen, files := diskState(t, dir, "t")
				isPre := sameDiskState(gen, files, preGen, preFiles)
				isPost := sameDiskState(gen, files, postGen, postFiles)
				if !isPre && !isPost {
					t.Fatalf("%s#%d (partial=%v): recovered state (gen %d, %d segs) is neither pre (gen %d, %d) nor post (gen %d, %d)",
						site, k, partial, gen, len(files), preGen, len(preFiles), postGen, len(postFiles))
				}
				if found := s2.Scrub(); len(found) != 0 {
					t.Fatalf("%s#%d (partial=%v): scrub after recovery: %v", site, k, partial, found[0])
				}
			}
		}
	}
	if points == 0 {
		t.Fatal("scenario exercised no crash points")
	}
	t.Logf("crash matrix: %d kill points, all recovered to pre or post state", points)
}

// TestCrashMatrixInsertBatch kills a batch insert that seals two full
// segments at every injection point.
func TestCrashMatrixInsertBatch(t *testing.T) {
	setup := func(tab *Table) error { return tab.InsertBatch(randWideRows(8, 1)) }
	op := func(tab *Table) error { return tab.InsertBatch(randWideRows(20, 2)) }
	runCrashMatrix(t, setup, op)
}

// TestCrashMatrixFlush kills a tail flush at every injection point.
func TestCrashMatrixFlush(t *testing.T) {
	setup := func(tab *Table) error {
		if err := tab.InsertBatch(randWideRows(8, 3)); err != nil {
			return err
		}
		return tab.InsertBatch(randWideRows(5, 4))
	}
	op := func(tab *Table) error { return tab.Flush() }
	runCrashMatrix(t, setup, op)
}

// TestCrashMatrixSortBy kills the clustered rewrite — the generation switch
// — at every injection point. Either the old generation keeps serving or the
// new one is fully adopted.
func TestCrashMatrixSortBy(t *testing.T) {
	setup := func(tab *Table) error { return tab.InsertBatch(randWideRows(16, 5)) }
	op := func(tab *Table) error { return tab.SortBy([]datum.SortSpec{{Col: 0}}) }
	runCrashMatrix(t, setup, op)
}

// TestCrashMatrixSortByShortSegment kills the rewrite of a table whose
// durable state includes a Flushed short segment — rows the switch record
// must not orphan. Recovery must land on exactly the old state (8-row plus
// 5-row segments) or the new one (the same 13 rows re-sealed sorted).
func TestCrashMatrixSortByShortSegment(t *testing.T) {
	setup := func(tab *Table) error {
		if err := tab.InsertBatch(randWideRows(8, 21)); err != nil {
			return err
		}
		if err := tab.InsertBatch(randWideRows(5, 22)); err != nil {
			return err
		}
		return tab.Flush()
	}
	op := func(tab *Table) error { return tab.SortBy([]datum.SortSpec{{Col: 0}}) }
	runCrashMatrix(t, setup, op)
}

// TestSortByPreservesFlushedRows is the regression test for SortBy's
// durability contract: rows made durable by Flush must still be durable after
// SortBy plus a reopen. The old rewrite sealed only full segRows chunks and
// moved the remainder back to the volatile tail while deleting the old
// generation's files, so 20 flushed rows reopened as 16.
func TestSortByPreservesFlushedRows(t *testing.T) {
	dir := t.TempDir()
	s := NewStoreWith(StoreConfig{Dir: dir, SegmentRows: 8})
	tab, err := s.CreateTable(wideDef("t"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.InsertBatch(randWideRows(20, 23)); err != nil {
		t.Fatal(err)
	}
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tab.SortBy([]datum.SortSpec{{Col: 0}}); err != nil {
		t.Fatal(err)
	}
	want, err := tab.Rows(nil)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewStoreWith(StoreConfig{Dir: dir, SegmentRows: 8})
	tab2, err := s2.CreateTable(wideDef("t"))
	if err != nil {
		t.Fatal(err)
	}
	if got := tab2.RowCount(); got != 20 {
		t.Fatalf("reopened after SortBy: RowCount = %d, want 20", got)
	}
	got, err := tab2.Rows(nil)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, got, want)
}

// TestReplayDiscardsRecordAtomically: a CRC-valid record with a malformed
// later entry must be discarded whole — replay must not fold its earlier,
// well-formed entries into the adopted state while truncating the record
// itself away as tail damage.
func TestReplayDiscardsRecordAtomically(t *testing.T) {
	dir := t.TempDir()
	good := manEntry{file: "seg-000000-000000.seg", id: 0, rows: 8, bytes: 128, crc: 0xdeadbeef}
	rec1 := frameRecord("add " + good.String())
	bad := manEntry{file: "seg-000000-000001.seg", id: 1, rows: 8, bytes: 128, crc: 0xfeedface}
	rec2 := frameRecord("add " + bad.String() + " not-an-entry")
	path := filepath.Join(dir, manifestName)
	if err := os.WriteFile(path, []byte(rec1+rec2), 0o644); err != nil {
		t.Fatal(err)
	}
	ms, truncated, err := replayManifest(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if truncated != int64(len(rec2)) {
		t.Fatalf("truncated %d bytes, want %d (the whole rejected record)", truncated, len(rec2))
	}
	if len(ms.entries) != 1 || ms.entries[0] != good {
		t.Fatalf("replay adopted %v, want only the first record's entry", ms.entries)
	}
}

// TestSealFailureLeavesTailConsistent is the regression test for the
// InsertBatch/Flush error-path contract: a failed seal must leave every
// buffered row in the in-memory tail exactly once, so a later Flush (after
// the fault clears) makes them all durable with exact counts.
func TestSealFailureLeavesTailConsistent(t *testing.T) {
	dir := t.TempDir()
	in := faultfs.New(faultfs.Rule{Op: "segment.fsync", After: 1})
	s := NewStoreWith(StoreConfig{Dir: dir, SegmentRows: 8, Faults: in})
	tab, err := s.CreateTable(wideDef("t"))
	if err != nil {
		t.Fatal(err)
	}
	rows := randWideRows(20, 7)
	if err := tab.InsertBatch(rows); err == nil {
		t.Fatal("InsertBatch should fail on the injected fsync fault")
	}
	if got := tab.RowCount(); got != 20 {
		t.Fatalf("after failed seal: RowCount = %d, want 20 (no dropped or doubled rows)", got)
	}
	// Nothing was adopted: the disk state is still empty.
	if gen, files := diskState(t, dir, "t"); gen != 0 || len(files) != 0 {
		t.Fatalf("failed seal adopted state: gen %d, %d files", gen, len(files))
	}
	// The one-shot fault has fired; the retry must succeed and seal exactly
	// the buffered rows.
	if err := tab.Flush(); err != nil {
		t.Fatalf("re-Flush after cleared fault: %v", err)
	}
	if got := tab.RowCount(); got != 20 {
		t.Fatalf("after re-Flush: RowCount = %d, want 20", got)
	}
	s2 := NewStoreWith(StoreConfig{Dir: dir, SegmentRows: 8})
	tab2, err := s2.CreateTable(wideDef("t"))
	if err != nil {
		t.Fatal(err)
	}
	if got := tab2.RowCount(); got != 20 {
		t.Fatalf("reopened: RowCount = %d, want 20", got)
	}
	got, err := tab2.Rows(nil)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, got, rows)
}

// TestTransientFaultRetry: transient faults (faultfs.ErrTransient) are
// retried up to IORetries times on both the write and read paths, while the
// same fault without retries propagates.
func TestTransientFaultRetry(t *testing.T) {
	transient := func() *faultfs.Injector {
		return faultfs.New(faultfs.Rule{Op: "segment.fsync", After: 1, Times: 2, Err: faultfs.ErrTransient})
	}
	// Without retries the first attempt's error propagates.
	s := NewStoreWith(StoreConfig{Dir: t.TempDir(), SegmentRows: 8, Faults: transient()})
	tab, err := s.CreateTable(wideDef("t"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.InsertBatch(randWideRows(8, 11)); !errors.Is(err, faultfs.ErrTransient) {
		t.Fatalf("without retries: got %v, want ErrTransient", err)
	}
	// With IORetries=3 the two transient failures are absorbed.
	s = NewStoreWith(StoreConfig{Dir: t.TempDir(), SegmentRows: 8, Faults: transient(),
		IORetries: 3, IORetryBackoff: time.Microsecond})
	if tab, err = s.CreateTable(wideDef("t")); err != nil {
		t.Fatal(err)
	}
	if err := tab.InsertBatch(randWideRows(8, 11)); err != nil {
		t.Fatalf("with retries: %v", err)
	}
	// Read path: a transient read fault heals under the same policy.
	sc := &ScanCtx{Faults: faultfs.New(faultfs.Rule{Op: "segment.read", After: 1, Times: 1, Err: faultfs.ErrTransient})}
	if _, err := tab.Rows(sc); err != nil {
		t.Fatalf("read with transient fault and retries: %v", err)
	}
	// A permanent fault is never retried: one occurrence, one failure.
	perm := faultfs.New(faultfs.Rule{Op: "segment.read", After: 1})
	sc = &ScanCtx{Faults: perm}
	s.cache = newColCache(s.cfg.CacheBytes) // drop cached columns to force the read
	if _, err := tab.Rows(sc); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("permanent read fault: got %v, want ErrInjected", err)
	}
	if n := perm.Count("segment.read"); n != 1 {
		t.Fatalf("permanent fault was attempted %d times, want 1", n)
	}

	// Manifest sites: a transient failure may leave the record (fsync failed
	// after a full write) or half of it (torn append) on disk. The retried
	// append must truncate that residue away first — otherwise replay adopts
	// the record twice and the table reopens with every row doubled, or trips
	// over torn bytes in the manifest interior and fails to open at all.
	for _, tc := range []struct {
		name string
		rule faultfs.Rule
	}{
		{"manifest.append", faultfs.Rule{Op: "manifest.append", After: 1, Times: 2, Err: faultfs.ErrTransient}},
		{"manifest.append torn", faultfs.Rule{Op: "manifest.append", After: 1, Times: 2, Err: faultfs.ErrTransient, Partial: true}},
		{"manifest.fsync", faultfs.Rule{Op: "manifest.fsync", After: 1, Times: 2, Err: faultfs.ErrTransient}},
	} {
		dir := t.TempDir()
		s := NewStoreWith(StoreConfig{Dir: dir, SegmentRows: 8, Faults: faultfs.New(tc.rule),
			IORetries: 3, IORetryBackoff: time.Microsecond})
		tab, err := s.CreateTable(wideDef("t"))
		if err != nil {
			t.Fatal(err)
		}
		rows := randWideRows(8, 13)
		if err := tab.InsertBatch(rows); err != nil {
			t.Fatalf("%s: insert with retries: %v", tc.name, err)
		}
		s2 := NewStoreWith(StoreConfig{Dir: dir, SegmentRows: 8})
		tab2, err := s2.CreateTable(wideDef("t"))
		if err != nil {
			t.Fatalf("%s: reopen after retried append: %v", tc.name, err)
		}
		if got := tab2.RowCount(); got != 8 {
			t.Fatalf("%s: reopened RowCount = %d, want 8 (record adopted more than once?)", tc.name, got)
		}
		got, err := tab2.Rows(nil)
		if err != nil {
			t.Fatalf("%s: reading reopened rows: %v", tc.name, err)
		}
		sameRows(t, got, rows)
	}
}
