// Typed integrity errors of the storage layer. Every detected corruption —
// at recovery, on block decode behind the column cache, or during a Scrub
// walk — surfaces as a *CorruptError carrying exact coordinates (table,
// segment, region, column), and matches ErrSegmentCorrupt under errors.Is so
// callers can distinguish "the bytes are wrong" from transient I/O failures.
package storage

import (
	"errors"
	"fmt"
)

// ErrSegmentCorrupt is the errors.Is target for every detected segment
// corruption (bad magic, footer or block checksum mismatch, truncated or
// undecodable data, manifest/footer disagreement).
var ErrSegmentCorrupt = errors.New("storage: segment corrupt")

// ErrManifestCorrupt is the errors.Is target for manifest damage beyond the
// torn-tail residue a crash legitimately leaves (which recovery silently
// truncates): records in the interior that fail their CRC frame.
var ErrManifestCorrupt = errors.New("storage: manifest corrupt")

// Corruption regions, from coarsest to finest. Scrub localizes every
// mismatch to one of these.
const (
	// RegionMagic: the 8-byte format tag at the end of the file is wrong —
	// not a segment file, or a flip landed in the trailer.
	RegionMagic = "magic"
	// RegionFooter: the footer failed its CRC or cannot be decoded (covers
	// zone maps, NULL counts, sketches and block offsets, which all live in
	// the footer).
	RegionFooter = "footer"
	// RegionBlock: one column block failed its CRC or cannot be decoded
	// (covers typed payloads, packed NULL bitmaps and boxed datums). Column
	// carries the ordinal.
	RegionBlock = "block"
	// RegionFile: the file is missing, unreadable, or disagrees with the
	// manifest (size or whole-file CRC) without a finer region to blame.
	RegionFile = "file"
)

// CorruptError reports one detected corruption with coordinates.
type CorruptError struct {
	// Table is the owning table name.
	Table string
	// Segment is the segment id within the table's current generation.
	Segment int
	// Path is the segment file path.
	Path string
	// Region classifies where the damage was detected (RegionMagic,
	// RegionFooter, RegionBlock, RegionFile).
	Region string
	// Column is the column ordinal for RegionBlock, -1 otherwise.
	Column int
	// Offset is the byte offset of the damaged region's start within the
	// file, -1 when unknown.
	Offset int64
	// Detail is a human-readable description of the mismatch.
	Detail string
}

func (e *CorruptError) Error() string {
	if e.Region == RegionBlock {
		return fmt.Sprintf("storage: segment corrupt: table %s segment %d column %d (%s, offset %d): %s",
			e.Table, e.Segment, e.Column, e.Region, e.Offset, e.Detail)
	}
	return fmt.Sprintf("storage: segment corrupt: table %s segment %d (%s, offset %d): %s",
		e.Table, e.Segment, e.Region, e.Offset, e.Detail)
}

// Is makes every CorruptError match ErrSegmentCorrupt.
func (e *CorruptError) Is(target error) bool { return target == ErrSegmentCorrupt }
