// The manifest: the single source of truth for a disk-backed table's visible
// state. Segment files are anonymous until an append-only MANIFEST record
// publishes them, so the write path can prepare any number of files (temp
// write → fsync → rename → dir fsync) and adopt them all with one record —
// the commit point of InsertBatch, Flush and SortBy. A crash before the
// record leaves orphan files that recovery quarantines; a crash during the
// record leaves a torn tail that replay truncates; either way the table
// reopens as exactly a manifest generation, never a hybrid.
//
// Records are single text lines framed with a CRC32C so replay can tell a
// torn tail from interior damage:
//
//	QM1 add <file>,<id>,<rows>,<bytes>,<filecrc> ... #<crc>
//	QM1 switch <gen> [<file>,<id>,<rows>,<bytes>,<filecrc> ...] #<crc>
//
// "add" appends segments to the current generation (InsertBatch/Flush);
// "switch" replaces the whole segment set under a new generation (SortBy).
// <filecrc> and <crc> are 8-hex-digit CRC32C values; <crc> covers everything
// on the line before " #".
package storage

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/faultfs"
)

// manifestName is the per-table manifest file, living in the table directory
// next to the segment files it describes.
const manifestName = "MANIFEST"

// manMagic tags every manifest record; bump it if the record grammar changes.
const manMagic = "QM1"

// manEntry is one published segment: its file name (relative to the table
// directory), id within the generation, row count, file size, and whole-file
// CRC32C.
type manEntry struct {
	file  string
	id    int
	rows  int
	bytes int64
	crc   uint32
}

// manifestState is the result of replaying a manifest: the current
// generation and its segment list, in adoption order.
type manifestState struct {
	gen     int
	entries []manEntry
}

func (e manEntry) String() string {
	return fmt.Sprintf("%s,%d,%d,%d,%08x", e.file, e.id, e.rows, e.bytes, e.crc)
}

func parseManEntry(s string) (manEntry, error) {
	var e manEntry
	parts := strings.Split(s, ",")
	if len(parts) != 5 {
		return e, fmt.Errorf("entry %q has %d fields, want 5", s, len(parts))
	}
	e.file = parts[0]
	if e.file == "" || strings.ContainsAny(e.file, "/ ") {
		return e, fmt.Errorf("entry %q has a bad file name", s)
	}
	id, err := strconv.Atoi(parts[1])
	if err != nil {
		return e, fmt.Errorf("entry %q: bad id: %v", s, err)
	}
	rows, err := strconv.Atoi(parts[2])
	if err != nil {
		return e, fmt.Errorf("entry %q: bad rows: %v", s, err)
	}
	bytes, err := strconv.ParseInt(parts[3], 10, 64)
	if err != nil {
		return e, fmt.Errorf("entry %q: bad bytes: %v", s, err)
	}
	crc, err := strconv.ParseUint(parts[4], 16, 32)
	if err != nil {
		return e, fmt.Errorf("entry %q: bad crc: %v", s, err)
	}
	e.id, e.rows, e.bytes, e.crc = id, rows, bytes, uint32(crc)
	return e, nil
}

// frameRecord wraps a payload into one checksummed manifest line.
func frameRecord(payload string) string {
	body := manMagic + " " + payload
	return fmt.Sprintf("%s #%08x\n", body, crc32.Checksum([]byte(body), crcTable))
}

// parseRecord validates one line's frame and returns its payload.
func parseRecord(line string) (string, error) {
	hash := strings.LastIndex(line, " #")
	if hash < 0 || len(line)-hash != 10 {
		return "", fmt.Errorf("record %q has no checksum frame", line)
	}
	body, crcHex := line[:hash], line[hash+2:]
	want, err := strconv.ParseUint(crcHex, 16, 32)
	if err != nil {
		return "", fmt.Errorf("record %q: bad checksum field: %v", line, err)
	}
	if got := crc32.Checksum([]byte(body), crcTable); got != uint32(want) {
		return "", fmt.Errorf("record checksum %08x, want %08x", got, uint32(want))
	}
	if !strings.HasPrefix(body, manMagic+" ") {
		return "", fmt.Errorf("record %q does not start with %q", line, manMagic)
	}
	return body[len(manMagic)+1:], nil
}

// parseManEntries parses a record's entry fields, all or nothing.
func parseManEntries(fields []string) ([]manEntry, error) {
	out := make([]manEntry, 0, len(fields))
	for _, f := range fields {
		e, err := parseManEntry(f)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// applyRecord folds one payload into the replay state. The whole record is
// parsed before any state changes, so a record rejected partway (a CRC-valid
// line with a malformed later entry) leaves ms untouched — replay must never
// adopt entries from a record it then discards as damaged.
func (ms *manifestState) applyRecord(payload string) error {
	fields := strings.Fields(payload)
	if len(fields) == 0 {
		return fmt.Errorf("empty record payload")
	}
	switch fields[0] {
	case "add":
		if len(fields) < 2 {
			return fmt.Errorf("add record with no entries")
		}
		ents, err := parseManEntries(fields[1:])
		if err != nil {
			return err
		}
		ms.entries = append(ms.entries, ents...)
	case "switch":
		if len(fields) < 2 {
			return fmt.Errorf("switch record with no generation")
		}
		gen, err := strconv.Atoi(fields[1])
		if err != nil {
			return fmt.Errorf("switch record: bad generation: %v", err)
		}
		ents, err := parseManEntries(fields[2:])
		if err != nil {
			return err
		}
		ms.gen = gen
		ms.entries = append(ms.entries[:0], ents...)
	default:
		return fmt.Errorf("unknown record verb %q", fields[0])
	}
	return nil
}

// replayManifest reads and folds every record of a manifest file. A missing
// file is an empty manifest. A damaged tail — the residue a crash mid-append
// legitimately leaves — is reported via truncated and, when repair is set,
// physically truncated away so future appends start clean (recovery repairs;
// read-only scrubs don't). Damage in the *interior* (a bad record followed by
// good ones) cannot come from a torn append and fails with
// ErrManifestCorrupt instead.
func replayManifest(path string, repair bool) (ms manifestState, truncated int64, err error) {
	raw, rerr := os.ReadFile(path)
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return ms, 0, nil
		}
		return ms, 0, rerr
	}
	goodEnd := 0
	pos := 0
	var tailErr error
	for pos < len(raw) {
		nl := bytes.IndexByte(raw[pos:], '\n')
		if nl < 0 {
			tailErr = fmt.Errorf("unterminated record")
			break
		}
		line := string(raw[pos : pos+nl])
		payload, perr := parseRecord(line)
		if perr != nil {
			tailErr = perr
			break
		}
		if aerr := ms.applyRecord(payload); aerr != nil {
			tailErr = aerr
			break
		}
		pos += nl + 1
		goodEnd = pos
	}
	if tailErr == nil {
		return ms, 0, nil
	}
	// Distinguish torn tail from interior damage: if any later line still
	// frames correctly, the damage is not a crash artifact.
	rest := string(raw[goodEnd:])
	for _, line := range strings.Split(rest, "\n")[1:] {
		if line == "" {
			continue
		}
		if _, perr := parseRecord(line); perr == nil {
			return ms, 0, fmt.Errorf("%w: %s: bad record not at tail (%v)", ErrManifestCorrupt, path, tailErr)
		}
	}
	truncated = int64(len(raw) - goodEnd)
	if repair {
		if terr := os.Truncate(path, int64(goodEnd)); terr != nil {
			return ms, truncated, terr
		}
	}
	return ms, truncated, nil
}

// manifestSize returns the current size of the manifest file — the base
// offset the next record is appended at. A missing file is an empty manifest.
func manifestSize(dir string) (int64, error) {
	fi, err := os.Stat(filepath.Join(dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	return fi.Size(), nil
}

// appendManifest durably appends one record at the given base offset: the
// file is truncated back to base, the line written there, then fsynced. The
// truncate makes a retried append idempotent — a failed earlier attempt may
// have left the record (whole, after a failed fsync) or half of it (a torn
// write) on disk, and re-appending without the truncate would adopt the
// record twice on replay or strand torn bytes in the manifest interior. A
// crash (no retry runs) still leaves at most a torn tail, which replay
// truncates. Callers serialize appends per table (t.mu), so base is stable
// across the retry loop. Fault streams: "manifest.append" (torn-write capable
// — a partial firing writes roughly half the line, simulating a crash
// mid-append) and "manifest.fsync".
func appendManifest(dir, payload string, base int64, faults *faultfs.Injector) error {
	line := frameRecord(payload)
	partial, ferr := faults.CheckPartial("manifest.append")
	f, err := os.OpenFile(filepath.Join(dir, manifestName), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(base); err != nil {
		f.Close()
		return err
	}
	if ferr != nil {
		if partial {
			f.WriteAt([]byte(line[:len(line)/2]), base)
			f.Sync()
		}
		f.Close()
		return ferr
	}
	if _, err := f.WriteAt([]byte(line), base); err != nil {
		f.Close()
		return err
	}
	if err := faults.Check("manifest.fsync"); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSegmentFile publishes raw at path via the atomic dance: write to a
// .tmp sibling, fsync, rename over the final name. The caller fsyncs the
// directory (once per batch) and appends the manifest record that actually
// adopts the file. Fault streams: "segment.writefile" (torn-write capable),
// "segment.fsync", "segment.rename".
func writeSegmentFile(path string, raw []byte, faults *faultfs.Injector) error {
	tmp := path + ".tmp"
	partial, ferr := faults.CheckPartial("segment.writefile")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if ferr != nil {
		if partial {
			f.Write(raw[:len(raw)/2])
			f.Sync()
		}
		f.Close()
		return ferr
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return err
	}
	if err := faults.Check("segment.fsync"); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := faults.Check("segment.rename"); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// syncDir fsyncs a directory, making the renames inside it durable. Fault
// stream: "dir.fsync".
func syncDir(dir string, faults *faultfs.Injector) error {
	if err := faults.Check("dir.fsync"); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
