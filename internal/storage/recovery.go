// Recovery: opening a disk-backed table replays its manifest and reconciles
// the directory against it. Manifest-listed segments are verified (size,
// whole-file CRC, footer, per-block CRCs — the file bytes are already in hand
// for the footer read, so full verification costs one CRC pass, and the
// recovery benchmark measures exactly this); files the manifest never adopted
// (a crash between rename and manifest append, or leftover temp files) are
// quarantined into lost/ rather than deleted. A listed segment that fails
// verification is soft-adopted: its row count comes from the manifest so the
// table's positional row-id space is preserved and unaffected segments keep
// serving, but any read of it returns the typed corruption.
package storage

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
)

// RecoveryReport describes what opening one disk-backed table found.
type RecoveryReport struct {
	// Table is the table name.
	Table string
	// Segments and Rows are the adopted totals (corrupt segments included —
	// they still occupy their row range).
	Segments int
	Rows     int
	// Quarantined lists file names moved into the table's lost/ directory:
	// segment or temp files present on disk but never published by the
	// manifest — the residue of a crash before the commit record.
	Quarantined []string
	// TruncatedManifestBytes is the size of the torn manifest tail discarded
	// during replay (a crash mid-append), 0 for a clean manifest.
	TruncatedManifestBytes int64
	// Corrupt holds one error per manifest-listed segment that failed
	// verification and was soft-adopted.
	Corrupt []*CorruptError
}

// Clean reports whether recovery found nothing abnormal.
func (r *RecoveryReport) Clean() bool {
	return len(r.Quarantined) == 0 && r.TruncatedManifestBytes == 0 && len(r.Corrupt) == 0
}

// recoverLocked replays the table's manifest into t.seg and reconciles the
// directory. Caller holds t.mu (or owns t exclusively during CreateTable).
func (t *Table) recoverLocked() (*RecoveryReport, error) {
	dir := t.seg.dir
	ms, truncated, err := replayManifest(filepath.Join(dir, manifestName), true)
	if err != nil {
		return nil, err
	}
	rep := &RecoveryReport{Table: t.Def.Name, TruncatedManifestBytes: truncated}
	referenced := map[string]bool{manifestName: true}
	maxID := -1
	for _, e := range ms.entries {
		referenced[e.file] = true
		sm, cerr := t.verifyEntry(e)
		sm.startRow = t.seg.sealedRows
		if cerr != nil {
			rep.Corrupt = append(rep.Corrupt, cerr)
		}
		t.seg.segs = append(t.seg.segs, sm)
		t.seg.sealedRows += sm.rows
		t.seg.diskBytes += sm.bytes
		if e.id > maxID {
			maxID = e.id
		}
	}
	t.seg.gen = ms.gen
	t.seg.nextID = maxID + 1
	rep.Segments = len(t.seg.segs)
	rep.Rows = t.seg.sealedRows
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || referenced[name] {
			continue
		}
		if !strings.HasSuffix(name, ".seg") && !strings.HasSuffix(name, ".tmp") {
			continue
		}
		lost := filepath.Join(dir, "lost")
		if err := os.MkdirAll(lost, 0o755); err != nil {
			return nil, err
		}
		if err := os.Rename(filepath.Join(dir, name), filepath.Join(lost, name)); err != nil {
			return nil, err
		}
		rep.Quarantined = append(rep.Quarantined, name)
	}
	return rep, nil
}

// verifyEntry fully checks one manifest-listed segment file. On success the
// returned segMeta is ready to adopt; on any failure it is the soft-adopt
// placeholder (row count and size taken from the manifest) and the
// corruption is returned alongside.
func (t *Table) verifyEntry(e manEntry) (segMeta, *CorruptError) {
	path := filepath.Join(t.seg.dir, e.file)
	soft := func(ce *CorruptError) (segMeta, *CorruptError) {
		ce.Table, ce.Segment = t.Def.Name, e.id
		return segMeta{id: e.id, rows: e.rows, bytes: e.bytes, fileCRC: e.crc, corrupt: ce}, ce
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return soft(&CorruptError{Path: path, Region: RegionFile, Column: -1, Offset: -1,
			Detail: fmt.Sprintf("manifest-listed file unreadable: %v", err)})
	}
	if int64(len(raw)) != e.bytes {
		return soft(&CorruptError{Path: path, Region: RegionFile, Column: -1, Offset: -1,
			Detail: fmt.Sprintf("file is %d bytes, manifest recorded %d", len(raw), e.bytes)})
	}
	sm, derr := decodeFooter(raw, path)
	if derr != nil {
		if ce, ok := derr.(*CorruptError); ok {
			return soft(ce)
		}
		return soft(&CorruptError{Path: path, Region: RegionFile, Column: -1, Offset: -1, Detail: derr.Error()})
	}
	if sm.rows != e.rows {
		return soft(&CorruptError{Path: path, Region: RegionFooter, Column: -1, Offset: -1,
			Detail: fmt.Sprintf("footer says %d rows, manifest recorded %d", sm.rows, e.rows)})
	}
	if len(sm.cols) != len(t.Def.Cols) {
		return soft(&CorruptError{Path: path, Region: RegionFooter, Column: -1, Offset: -1,
			Detail: fmt.Sprintf("segment has %d columns, table %s has %d", len(sm.cols), t.Def.Name, len(t.Def.Cols))})
	}
	if got := crc32.Checksum(raw, crcTable); got != e.crc {
		// The footer survived, so the damage is in a block — localize it.
		for ci := range sm.cols {
			cm := &sm.cols[ci]
			if bcrc := crc32.Checksum(raw[cm.off:cm.off+cm.blockLen], crcTable); bcrc != cm.crc {
				return soft(&CorruptError{Path: path, Region: RegionBlock, Column: ci, Offset: cm.off,
					Detail: fmt.Sprintf("block checksum %08x, want %08x", bcrc, cm.crc)})
			}
		}
		return soft(&CorruptError{Path: path, Region: RegionFile, Column: -1, Offset: -1,
			Detail: fmt.Sprintf("file checksum %08x, manifest recorded %08x", got, e.crc)})
	}
	sm.id = e.id
	sm.fileCRC = e.crc
	return sm, nil
}

// Recovery returns the recovery reports accumulated by CreateTable since the
// store was opened, one per disk-backed table, in creation order.
func (s *Store) Recovery() []*RecoveryReport {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*RecoveryReport, len(s.recovery))
	copy(out, s.recovery)
	return out
}
