// Scrub: full offline verification of segment files — every magic, footer
// CRC, block CRC and block decode, plus the manifest's whole-file checksum.
// Reads raw file bytes, never the column cache, so it finds damage that
// happened after adoption. Two entry points: Store.Scrub for a live store,
// ScrubDir for a storage directory without a catalog (qopt -scrub).
package storage

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Scrub verifies every sealed segment of every disk-backed table and returns
// one error per corruption found, with coordinates. An empty result means the
// store's on-disk state is fully intact. In-memory stores scrub to nothing.
func (s *Store) Scrub() []*CorruptError {
	s.mu.RLock()
	names := make([]string, 0, len(s.tables))
	for k := range s.tables {
		names = append(names, k)
	}
	sort.Strings(names)
	tables := make([]*Table, len(names))
	for i, k := range names {
		tables[i] = s.tables[k]
	}
	s.mu.RUnlock()
	var out []*CorruptError
	for _, t := range tables {
		out = append(out, t.Scrub()...)
	}
	return out
}

// Scrub verifies this table's sealed segments.
func (t *Table) Scrub() []*CorruptError {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.seg == nil {
		return nil
	}
	var out []*CorruptError
	for si := range t.seg.segs {
		sm := &t.seg.segs[si]
		if sm.corrupt != nil {
			out = append(out, sm.corrupt)
			continue
		}
		out = append(out, scrubFile(t.segPath(sm.id), t.Def.Name, sm.id, sm.bytes, sm.fileCRC)...)
	}
	return out
}

// scrubFile fully verifies one segment file against its adopted size and
// whole-file CRC: footer (magic, CRC, decodability), then every block's CRC
// and decode. Multiple block corruptions in one file all get reported.
func scrubFile(path, table string, seg int, wantBytes int64, wantCRC uint32) []*CorruptError {
	one := func(ce *CorruptError) []*CorruptError {
		ce.Table, ce.Segment = table, seg
		return []*CorruptError{ce}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return one(&CorruptError{Path: path, Region: RegionFile, Column: -1, Offset: -1,
			Detail: fmt.Sprintf("unreadable: %v", err)})
	}
	if wantBytes > 0 && int64(len(raw)) != wantBytes {
		return one(&CorruptError{Path: path, Region: RegionFile, Column: -1, Offset: -1,
			Detail: fmt.Sprintf("file is %d bytes, adopted at %d", len(raw), wantBytes)})
	}
	sm, derr := decodeFooter(raw, path)
	if derr != nil {
		if ce, ok := derr.(*CorruptError); ok {
			return one(ce)
		}
		return one(&CorruptError{Path: path, Region: RegionFile, Column: -1, Offset: -1, Detail: derr.Error()})
	}
	var out []*CorruptError
	add := func(ce *CorruptError) {
		ce.Table, ce.Segment = table, seg
		out = append(out, ce)
	}
	for ci := range sm.cols {
		cm := &sm.cols[ci]
		block := raw[cm.off : cm.off+cm.blockLen]
		if got := crc32.Checksum(block, crcTable); got != cm.crc {
			add(&CorruptError{Path: path, Region: RegionBlock, Column: ci, Offset: cm.off,
				Detail: fmt.Sprintf("block checksum %08x, want %08x", got, cm.crc)})
			continue
		}
		if _, err := decodeColumn(block, sm.rows); err != nil {
			add(&CorruptError{Path: path, Region: RegionBlock, Column: ci, Offset: cm.off,
				Detail: fmt.Sprintf("block decode: %v", err)})
		}
	}
	if len(out) == 0 && wantCRC != 0 {
		if got := crc32.Checksum(raw, crcTable); got != wantCRC {
			add(&CorruptError{Path: path, Region: RegionFile, Column: -1, Offset: -1,
				Detail: fmt.Sprintf("file checksum %08x, adopted at %08x", got, wantCRC)})
		}
	}
	return out
}

// ScrubDir verifies a storage directory without needing the catalog: every
// subdirectory holding a MANIFEST is treated as a table, its manifest
// replayed (read-only — torn tails are reported, not repaired) and every
// listed segment fully checked. The tool entry point behind qopt -scrub.
func ScrubDir(dir string) ([]*CorruptError, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*CorruptError
	for _, de := range entries {
		if !de.IsDir() {
			continue
		}
		table := de.Name()
		tdir := filepath.Join(dir, table)
		mpath := filepath.Join(tdir, manifestName)
		if _, err := os.Stat(mpath); err != nil {
			continue // not a table directory
		}
		ms, truncated, err := replayManifest(mpath, false)
		if err != nil {
			out = append(out, &CorruptError{Table: table, Segment: -1, Path: mpath,
				Region: RegionFile, Column: -1, Offset: -1, Detail: err.Error()})
			continue
		}
		if truncated > 0 {
			out = append(out, &CorruptError{Table: table, Segment: -1, Path: mpath,
				Region: RegionFile, Column: -1, Offset: -1,
				Detail: fmt.Sprintf("manifest has a %d-byte torn tail (will be truncated at next open)", truncated)})
		}
		for _, e := range ms.entries {
			out = append(out, scrubFile(filepath.Join(tdir, e.file), table, e.id, e.bytes, e.crc)...)
		}
	}
	return out, nil
}
