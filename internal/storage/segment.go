// Columnar segment files: the persistent format behind disk-backed tables.
// A segment holds a fixed row range of one table as typed column blocks
// (mirroring datum.Vec: []int64 / []float64 / []string payloads plus a packed
// NULL bitmap, with a boxed per-datum fallback for mixed-kind columns),
// followed by a footer carrying per-column min/max zone maps, NULL counts and
// a small linear-counting distinct sketch. Zone maps let scans eliminate
// segments a predicate cannot match without touching their bytes, and the
// footer metadata doubles as a coarse histogram for the optimizer when
// table-level statistics are stale.
//
// Encoding reuses the spill-file conventions from internal/exec: uvarint
// counts, varint integers, raw little-endian float bits (math.Float64bits,
// so every NaN payload and signed zero round-trips exactly), uvarint-length
// strings, and a kind byte per boxed datum.
package storage

import (
	"bytes"
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sort"
	"sync"

	"repro/internal/datum"
	"repro/internal/faultfs"
)

// segMagic trails every segment file; it doubles as a format version tag.
// Version 2 added CRC32C integrity: one checksum per column block and one
// over the footer, both verified on decode. Version 3 adds compressed block
// representations (dictionary and run-length). New segments are written as
// version 3; version-2 files decode unchanged (they simply never contain the
// new reprs), so stores sealed before the upgrade keep serving without a
// rewrite. Version-1 files fail the magic check and are quarantined at
// recovery rather than trusted.
const segMagic = "QOPTSEG3"

// segMagicV2 is the previous format version, still accepted on read.
const segMagicV2 = "QOPTSEG2"

// crcTable is the Castagnoli polynomial shared by every storage checksum
// (column blocks, footers, whole files in the manifest, manifest records) —
// the same CRC32C most storage engines use, hardware-accelerated on amd64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// sketchBytes is the size of the per-column distinct sketch: a 256-bit
// linear-counting bitmap (distinct values hash to bits; the zero-bit count
// estimates cardinality).
const sketchBytes = 32

// Column block representations.
const (
	reprTyped byte = 0 // typed payload + NULL bitmap
	reprBoxed byte = 1 // per-datum kind byte + payload (mixed-kind columns)
	reprDict  byte = 2 // sorted string dictionary + per-row codes (low-NDV strings)
	reprRLE   byte = 3 // run-length: (length, value) pairs for long constant runs
)

// dictMaxSize is the hard cap on dictionary entries: a string column whose
// exact distinct count (per segment) is at most this many values is
// dictionary-encoded; one more value and it stays plain. The footer sketch
// only pre-filters — the exact count decides, so the threshold is
// deterministic regardless of sketch collisions.
const dictMaxSize = 256

// rleMinRows / rleMaxRunRatio gate run-length encoding: the column must have
// at least rleMinRows rows and average at least rleMaxRunRatio rows per run
// (runs ≤ n/rleMaxRunRatio). Short segments and high-churn columns stay in
// the plain representation, which decodes with one bulk copy.
const (
	rleMinRows     = 64
	rleMaxRunRatio = 8
)

// ScanCtx threads fault injection and real-I/O accounting from the executor
// into storage reads. A nil ScanCtx disables both, so internal callers
// (index builds, stats collection) can pass nil. One ScanCtx belongs to one
// goroutine; parallel workers each carry their own and fold BytesRead into
// their counters at pipeline barriers.
type ScanCtx struct {
	// Faults, when non-nil, is checked on the "segment.open" and
	// "segment.read" operation streams before the corresponding syscalls.
	Faults *faultfs.Injector
	// BytesRead accumulates bytes actually read from segment files. Column
	// blocks served from the decoded-column cache add nothing, which is what
	// makes cold-vs-warm benchmarks honest.
	BytesRead int64
	// BlocksDict / BlocksRLE / BlocksPlain count cold column-block reads by
	// representation (cache hits add nothing, same as BytesRead), so EXPLAIN
	// ANALYZE can report how much of a scan ran over encoded data.
	BlocksDict  int64
	BlocksRLE   int64
	BlocksPlain int64
}

func (sc *ScanCtx) check(op string) error {
	if sc == nil || sc.Faults == nil {
		return nil
	}
	return sc.Faults.Check(op)
}

func (sc *ScanCtx) addBytes(n int64) {
	if sc != nil {
		sc.BytesRead += n
	}
}

func (sc *ScanCtx) addBlock(repr byte) {
	if sc == nil {
		return
	}
	switch repr {
	case reprDict:
		sc.BlocksDict++
	case reprRLE:
		sc.BlocksRLE++
	default:
		sc.BlocksPlain++
	}
}

// colMeta is the decoded footer entry for one column block.
type colMeta struct {
	repr      byte
	kind      datum.Kind
	off       int64
	blockLen  int64
	crc       uint32 // CRC32C of the block bytes, verified on decode
	nullCount int
	// hasZone reports whether min/max form a usable zone map. It is false
	// when the column has no non-NULL values and when any value is a float
	// NaN (datum.Compare does not totally order NaN, so range reasoning over
	// such a column would be unsound).
	hasZone  bool
	min, max datum.D
	sketch   [sketchBytes]byte
}

// segMeta describes one sealed segment of a table.
type segMeta struct {
	id       int
	startRow int
	rows     int
	bytes    int64 // file size
	fileCRC  uint32
	cols     []colMeta
	// corrupt, when non-nil, marks a manifest-listed segment whose file failed
	// verification at recovery. The segment is soft-adopted — rows comes from
	// the manifest so the table's row-id space stays intact and unaffected
	// segments keep serving — but any read of it returns this error.
	corrupt *CorruptError
}

// SegmentInfo is the public shape of a sealed segment, exposed so the
// executor can reason about row ranges and charge per-segment pages.
type SegmentInfo struct {
	ID       int
	StartRow int
	Rows     int
	Bytes    int64
}

// --- per-datum encode/decode (spill conventions) ---

func appendD(buf *bytes.Buffer, d datum.D) {
	var tmp [binary.MaxVarintLen64]byte
	buf.WriteByte(byte(d.Kind()))
	switch d.Kind() {
	case datum.KindNull:
	case datum.KindBool:
		if d.Bool() {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
	case datum.KindInt:
		buf.Write(tmp[:binary.PutVarint(tmp[:], d.Int())])
	case datum.KindFloat:
		binary.LittleEndian.PutUint64(tmp[:8], math.Float64bits(d.Float()))
		buf.Write(tmp[:8])
	case datum.KindString:
		s := d.Str()
		buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(s)))])
		buf.WriteString(s)
	}
}

// byteReader decodes from a byte slice with explicit error state, so corrupt
// or truncated files surface as errors instead of panics.
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) ReadByte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("storage: truncated segment data")
	}
	c := r.b[r.off]
	r.off++
	return c, nil
}

func (r *byteReader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, fmt.Errorf("storage: truncated segment data")
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s, nil
}

func (r *byteReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(r)
}

func (r *byteReader) varint() (int64, error) {
	return binary.ReadVarint(r)
}

func decodeD(r *byteReader) (datum.D, error) {
	kb, err := r.ReadByte()
	if err != nil {
		return datum.Null, err
	}
	switch datum.Kind(kb) {
	case datum.KindNull:
		return datum.Null, nil
	case datum.KindBool:
		b, err := r.ReadByte()
		if err != nil {
			return datum.Null, err
		}
		return datum.NewBool(b != 0), nil
	case datum.KindInt:
		v, err := r.varint()
		if err != nil {
			return datum.Null, err
		}
		return datum.NewInt(v), nil
	case datum.KindFloat:
		b, err := r.take(8)
		if err != nil {
			return datum.Null, err
		}
		return datum.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(b))), nil
	case datum.KindString:
		n, err := r.uvarint()
		if err != nil {
			return datum.Null, err
		}
		b, err := r.take(int(n))
		if err != nil {
			return datum.Null, err
		}
		return datum.NewString(string(b)), nil
	}
	return datum.Null, fmt.Errorf("storage: unknown datum kind byte %d", kb)
}

// --- column block encode/decode ---

// sameExact reports whether two datums are the same stored value, down to
// the float bit pattern (so -0.0 and 0.0, or distinct NaN payloads, never
// merge into one run — RLE round-trips must be bit-exact).
func sameExact(a, b datum.D) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case datum.KindNull:
		return true
	case datum.KindBool:
		return a.Bool() == b.Bool()
	case datum.KindInt:
		return a.Int() == b.Int()
	case datum.KindFloat:
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	case datum.KindString:
		return a.Str() == b.Str()
	}
	return false
}

// strAt reads the string value of row i from a plain or dictionary-encoded
// string vector. Row i must be non-NULL.
func strAt(v *datum.Vec, i int) string {
	if v.Dict != nil {
		return v.Dict.Vals[v.Ints[i]]
	}
	return v.Strs[i]
}

// rleRuns counts the constant runs of v, giving up (ok=false) as soon as the
// count proves run-length encoding unprofitable: fewer than rleMinRows rows,
// or more than one run per rleMaxRunRatio rows.
func rleRuns(v *datum.Vec) (int, bool) {
	n := v.Len()
	if n < rleMinRows || v.Kind() == datum.KindNull {
		return 0, false
	}
	maxRuns := n / rleMaxRunRatio
	runs := 1
	prev := v.D(0)
	for i := 1; i < n; i++ {
		d := v.D(i)
		if !sameExact(d, prev) {
			runs++
			if runs > maxRuns {
				return 0, false
			}
			prev = d
		}
	}
	return runs, true
}

// buildDict collects the exact distinct non-NULL strings of v into a sorted
// dictionary plus per-row codes (NULL rows code 0). ok=false when the column
// exceeds dictMaxSize distinct values or has no non-NULL value at all (the
// plain representation already encodes an all-NULL column as just a bitmap).
func buildDict(v *datum.Vec) (*datum.StrDict, []int64, bool) {
	n := v.Len()
	seen := make(map[string]struct{}, dictMaxSize+1)
	for i := 0; i < n; i++ {
		if v.Null(i) {
			continue
		}
		s := strAt(v, i)
		if _, ok := seen[s]; !ok {
			if len(seen) >= dictMaxSize {
				return nil, nil, false
			}
			seen[s] = struct{}{}
		}
	}
	if len(seen) == 0 {
		return nil, nil, false
	}
	vals := make([]string, 0, len(seen))
	for s := range seen {
		vals = append(vals, s)
	}
	sort.Strings(vals)
	dict := &datum.StrDict{Vals: vals}
	codes := make([]int64, n)
	for i := 0; i < n; i++ {
		if v.Null(i) {
			continue
		}
		code, _ := dict.Code(strAt(v, i))
		codes[i] = code
	}
	return dict, codes, true
}

// writeNulls appends the uvarint NULL count and, when non-zero, the packed
// bitmap words — the header shared by the typed, dict and RLE layouts
// (RLE stores NULLs inline in its runs instead and passes an empty bitmap
// through the count only).
func writeNulls(buf *bytes.Buffer, v *datum.Vec) {
	var tmp [binary.MaxVarintLen64]byte
	n := v.Len()
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(v.NumNulls()))])
	if v.NumNulls() > 0 {
		words := (n + 63) / 64
		nulls := v.Nulls()
		for w := 0; w < words; w++ {
			var bits uint64
			if w < len(nulls) {
				bits = nulls[w]
			}
			binary.LittleEndian.PutUint64(tmp[:8], bits)
			buf.Write(tmp[:8])
		}
	}
}

// encodeColumn appends v's column block to buf in the representation picked
// at seal time, recording the choice in cm.repr. Boxed columns always encode
// per-datum. With compression enabled, run-length wins when the column is
// long constant runs (any kind — the shape SortBy produces), then a sorted
// dictionary for low-NDV string columns; cm's distinct sketch (already
// computed by the caller) pre-filters obviously high-cardinality columns so
// only plausible ones pay the exact distinct count. Plain typed layout is
// the universal fallback.
func encodeColumn(buf *bytes.Buffer, v *datum.Vec, cm *colMeta, compress bool) {
	var tmp [binary.MaxVarintLen64]byte
	n := v.Len()
	if v.Boxed() {
		cm.repr = reprBoxed
		buf.WriteByte(reprBoxed)
		buf.WriteByte(0)
		buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(n))])
		for i := 0; i < n; i++ {
			appendD(buf, v.D(i))
		}
		return
	}
	if compress {
		if runs, ok := rleRuns(v); ok {
			cm.repr = reprRLE
			encodeRLE(buf, v, runs)
			return
		}
		if v.Kind() == datum.KindString && sketchDistinct(cm.sketch, float64(n)) <= 2*dictMaxSize {
			if dict, codes, ok := buildDict(v); ok {
				cm.repr = reprDict
				encodeDict(buf, v, dict, codes)
				return
			}
		}
	}
	cm.repr = reprTyped
	buf.WriteByte(reprTyped)
	buf.WriteByte(byte(v.Kind()))
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(n))])
	writeNulls(buf, v)
	switch v.Kind() {
	case datum.KindInt, datum.KindBool:
		for _, x := range v.Ints {
			buf.Write(tmp[:binary.PutVarint(tmp[:], x)])
		}
	case datum.KindFloat:
		for _, f := range v.Floats {
			binary.LittleEndian.PutUint64(tmp[:8], math.Float64bits(f))
			buf.Write(tmp[:8])
		}
	case datum.KindString:
		for i := 0; i < n; i++ {
			var s string
			if v.Dict == nil {
				s = v.Strs[i]
			} else if !v.Null(i) {
				s = strAt(v, i) // NULL slots re-encode as ""
			}
			buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(s)))])
			buf.WriteString(s)
		}
	case datum.KindNull:
		// all-NULL column: the bitmap already says everything
	}
}

// encodeDict writes a dictionary block: NULL header, the sorted dictionary
// (uvarint count, then uvarint-length strings), then one uvarint code per
// row. NULL rows carry code 0 so decode never reads an out-of-range slot.
func encodeDict(buf *bytes.Buffer, v *datum.Vec, dict *datum.StrDict, codes []int64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.WriteByte(reprDict)
	buf.WriteByte(byte(datum.KindString))
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(codes)))])
	writeNulls(buf, v)
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(dict.Vals)))])
	for _, s := range dict.Vals {
		buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(s)))])
		buf.WriteString(s)
	}
	for _, c := range codes {
		buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(c))])
	}
}

// encodeRLE writes a run-length block: row and NULL counts, the run count,
// then (uvarint run length, spill-convention datum) per run — NULL runs
// encode as the NULL kind byte with no payload.
func encodeRLE(buf *bytes.Buffer, v *datum.Vec, runs int) {
	var tmp [binary.MaxVarintLen64]byte
	n := v.Len()
	buf.WriteByte(reprRLE)
	buf.WriteByte(byte(v.Kind()))
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(n))])
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(v.NumNulls()))])
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(runs))])
	i := 0
	for i < n {
		d := v.D(i)
		j := i + 1
		for j < n && sameExact(v.D(j), d) {
			j++
		}
		buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(j-i))])
		appendD(buf, d)
		i = j
	}
}

// decodeColumn rebuilds a column block into a Vec. rows is the segment's row
// count, used to validate the block.
func decodeColumn(block []byte, rows int) (*datum.Vec, error) {
	r := &byteReader{b: block}
	repr, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	kb, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	nu, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	n := int(nu)
	if n != rows {
		return nil, fmt.Errorf("storage: column block has %d rows, segment has %d", n, rows)
	}
	if repr == reprBoxed {
		ds := make([]datum.D, n)
		for i := range ds {
			if ds[i], err = decodeD(r); err != nil {
				return nil, err
			}
		}
		return datum.NewBoxedVec(ds), nil
	}
	if repr == reprDict {
		return decodeDict(r, datum.Kind(kb), n)
	}
	if repr == reprRLE {
		return decodeRLE(r, datum.Kind(kb), n)
	}
	kind := datum.Kind(kb)
	nn, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	numNulls := int(nn)
	var nulls datum.Bitmap
	if numNulls > 0 {
		words := (n + 63) / 64
		nulls = make(datum.Bitmap, words)
		for w := 0; w < words; w++ {
			b, err := r.take(8)
			if err != nil {
				return nil, err
			}
			nulls[w] = binary.LittleEndian.Uint64(b)
		}
	}
	switch kind {
	case datum.KindInt, datum.KindBool:
		ints := make([]int64, n)
		for i := range ints {
			if ints[i], err = r.varint(); err != nil {
				return nil, err
			}
		}
		return datum.NewTypedVec(kind, n, ints, nil, nil, nulls, numNulls), nil
	case datum.KindFloat:
		floats := make([]float64, n)
		for i := range floats {
			b, err := r.take(8)
			if err != nil {
				return nil, err
			}
			floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(b))
		}
		return datum.NewTypedVec(kind, n, nil, floats, nil, nulls, numNulls), nil
	case datum.KindString:
		strs := make([]string, n)
		for i := range strs {
			ln, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			b, err := r.take(int(ln))
			if err != nil {
				return nil, err
			}
			strs[i] = string(b)
		}
		return datum.NewTypedVec(kind, n, nil, nil, strs, nulls, numNulls), nil
	case datum.KindNull:
		return datum.NewTypedVec(datum.KindNull, n, nil, nil, nil, nulls, numNulls), nil
	}
	return nil, fmt.Errorf("storage: unknown column kind byte %d", kb)
}

// decodeNulls reads the uvarint NULL count and bitmap written by writeNulls.
func decodeNulls(r *byteReader, n int) (datum.Bitmap, int, error) {
	nn, err := r.uvarint()
	if err != nil {
		return nil, 0, err
	}
	numNulls := int(nn)
	if numNulls > n {
		return nil, 0, fmt.Errorf("storage: %d NULLs in a %d-row block", numNulls, n)
	}
	var nulls datum.Bitmap
	if numNulls > 0 {
		words := (n + 63) / 64
		nulls = make(datum.Bitmap, words)
		for w := 0; w < words; w++ {
			b, err := r.take(8)
			if err != nil {
				return nil, 0, err
			}
			nulls[w] = binary.LittleEndian.Uint64(b)
		}
	}
	return nulls, numNulls, nil
}

// decodeDict rebuilds a dictionary block into a dictionary-encoded Vec —
// the codes stay encoded all the way into the executor; only kernels that
// need the strings consult the dictionary. The sort order and code range are
// validated so a block that passes its CRC but was written wrong still
// surfaces as corruption, not as silent misreads.
func decodeDict(r *byteReader, kind datum.Kind, n int) (*datum.Vec, error) {
	if kind != datum.KindString {
		return nil, fmt.Errorf("storage: dictionary block with non-string kind byte %d", kind)
	}
	nulls, numNulls, err := decodeNulls(r, n)
	if err != nil {
		return nil, err
	}
	dl, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	dictLen := int(dl)
	if dictLen <= 0 || dictLen > n {
		return nil, fmt.Errorf("storage: dictionary with %d entries in a %d-row block", dictLen, n)
	}
	vals := make([]string, dictLen)
	for i := range vals {
		ln, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := r.take(int(ln))
		if err != nil {
			return nil, err
		}
		vals[i] = string(b)
		if i > 0 && vals[i] <= vals[i-1] {
			return nil, fmt.Errorf("storage: dictionary entry %d out of order", i)
		}
	}
	codes := make([]int64, n)
	for i := range codes {
		c, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if c >= uint64(dictLen) {
			return nil, fmt.Errorf("storage: row %d code %d exceeds dictionary of %d", i, c, dictLen)
		}
		codes[i] = int64(c)
	}
	return datum.NewDictVec(n, codes, &datum.StrDict{Vals: vals}, nulls, numNulls), nil
}

// decodeRLE expands a run-length block to the plain typed representation
// (run values share storage, so the expansion is cheap); the decoded vector
// is what the column cache holds, trading RLE's bytes-on-disk win for plain
// kernel speed in memory.
func decodeRLE(r *byteReader, kind datum.Kind, n int) (*datum.Vec, error) {
	nn, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	numNulls := int(nn)
	ru, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	runs := int(ru)
	if runs <= 0 || runs > n {
		return nil, fmt.Errorf("storage: %d runs in a %d-row block", runs, n)
	}
	v := datum.NewVec(kind, n)
	total := 0
	for ri := 0; ri < runs; ri++ {
		ln, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		runLen := int(ln)
		if runLen <= 0 || total+runLen > n {
			return nil, fmt.Errorf("storage: run %d of length %d overflows %d-row block", ri, runLen, n)
		}
		d, err := decodeD(r)
		if err != nil {
			return nil, err
		}
		if !d.IsNull() && d.Kind() != kind {
			return nil, fmt.Errorf("storage: run %d value kind %d, want %d", ri, d.Kind(), kind)
		}
		for i := 0; i < runLen; i++ {
			v.AppendD(d)
		}
		total += runLen
	}
	if total != n {
		return nil, fmt.Errorf("storage: runs cover %d of %d rows", total, n)
	}
	if v.NumNulls() != numNulls {
		return nil, fmt.Errorf("storage: block declares %d NULLs, runs carry %d", numNulls, v.NumNulls())
	}
	return v, nil
}

// --- zone maps and distinct sketches ---

// zoneOf computes the footer statistics of one column vector: NULL count,
// min/max zone bounds and the distinct sketch. hasZone is withheld for
// columns with no non-NULL values and for columns containing a float NaN.
func zoneOf(v *datum.Vec) (nullCount int, hasZone bool, minD, maxD datum.D, sketch [sketchBytes]byte) {
	sawNaN := false
	for i := 0; i < v.Len(); i++ {
		d := v.D(i)
		if d.IsNull() {
			nullCount++
			continue
		}
		if d.Kind() == datum.KindFloat && math.IsNaN(d.Float()) {
			sawNaN = true
		}
		if !hasZone {
			minD, maxD, hasZone = d, d, true
		} else {
			if datum.Compare(d, minD) < 0 {
				minD = d
			}
			if datum.Compare(d, maxD) > 0 {
				maxD = d
			}
		}
		h := sketchHash(d)
		sketch[(h%256)>>3] |= 1 << (h % 8)
	}
	if sawNaN {
		hasZone = false
		minD, maxD = datum.Null, datum.Null
	}
	return
}

// sketchHash is a deterministic FNV-1a over a family tag plus a canonical
// payload. It must be stable across processes (sketches are persisted), so it
// cannot use datum.Hash's per-process maphash seed. Numerics hash their
// float64 bits so 1 and 1.0 count as one distinct value, matching the
// engine's cross-kind equality.
func sketchHash(d datum.D) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	step := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	step64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			step(byte(v >> (8 * i)))
		}
	}
	switch d.Kind() {
	case datum.KindBool:
		step(1)
		if d.Bool() {
			step(1)
		} else {
			step(0)
		}
	case datum.KindInt:
		step(2)
		step64(math.Float64bits(float64(d.Int())))
	case datum.KindFloat:
		step(2)
		step64(math.Float64bits(d.Float()))
	case datum.KindString:
		step(3)
		s := d.Str()
		for i := 0; i < len(s); i++ {
			step(s[i])
		}
	}
	return h
}

// sketchDistinct is the linear-counting estimate of a sketch: with m bits and
// z still zero, distinct ≈ -m·ln(z/m). A saturated sketch (z = 0) caps the
// estimate at cap — the sketch only resolves cardinalities up to a few
// hundred, which is exactly the coarse-histogram duty it has here.
func sketchDistinct(sketch [sketchBytes]byte, capRows float64) float64 {
	zero := 0
	for _, b := range sketch {
		for i := 0; i < 8; i++ {
			if b&(1<<i) == 0 {
				zero++
			}
		}
	}
	const m = float64(sketchBytes * 8)
	if zero == 0 {
		return capRows
	}
	d := -m * math.Log(float64(zero)/m)
	if d < 1 {
		d = 1
	}
	if capRows > 0 && d > capRows {
		d = capRows
	}
	return d
}

// unionSketch ORs b into a (sketches of the same column across segments union
// bitwise).
func unionSketch(a *[sketchBytes]byte, b [sketchBytes]byte) {
	for i := range a {
		a[i] |= b[i]
	}
}

// --- segment file write/read ---

// encodeSegment lays out the column blocks and footer of one segment.
// Fault checks run on the store's injector: "segment.create" once, then
// "segment.write" per column block, mirroring the spill path's cadence.
// Zone maps and distinct sketches are computed before each column encodes,
// because the encoder uses the sketch to pick a representation; compress=
// false (Options.DisableCompression) forces the plain layout everywhere.
func encodeSegment(vecs []*datum.Vec, faults *faultfs.Injector, compress bool) ([]byte, []colMeta, error) {
	if faults != nil {
		if err := faults.Check("segment.create"); err != nil {
			return nil, nil, err
		}
	}
	var buf bytes.Buffer
	metas := make([]colMeta, len(vecs))
	for ci, v := range vecs {
		if faults != nil {
			if err := faults.Check("segment.write"); err != nil {
				return nil, nil, err
			}
		}
		cm := colMeta{kind: v.Kind()}
		cm.nullCount, cm.hasZone, cm.min, cm.max, cm.sketch = zoneOf(v)
		off := int64(buf.Len())
		encodeColumn(&buf, v, &cm, compress)
		cm.off = off
		cm.blockLen = int64(buf.Len()) - off
		cm.crc = crc32.Checksum(buf.Bytes()[off:], crcTable)
		metas[ci] = cm
	}
	// Footer: rows, ncols, then one entry per column. The trailer after the
	// footer is fixed-width — CRC32C(footer), footer length, magic — so the
	// reader can locate and verify the footer from the file tail alone.
	var tmp [binary.MaxVarintLen64]byte
	footerOff := buf.Len()
	rows := 0
	if len(vecs) > 0 {
		rows = vecs[0].Len()
	}
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(rows))])
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(metas)))])
	for _, cm := range metas {
		buf.WriteByte(cm.repr)
		buf.WriteByte(byte(cm.kind))
		buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(cm.off))])
		buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(cm.blockLen))])
		var crcb [4]byte
		binary.LittleEndian.PutUint32(crcb[:], cm.crc)
		buf.Write(crcb[:])
		buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(cm.nullCount))])
		if cm.hasZone {
			buf.WriteByte(1)
			appendD(&buf, cm.min)
			appendD(&buf, cm.max)
		} else {
			buf.WriteByte(0)
		}
		buf.Write(cm.sketch[:])
	}
	footerLen := buf.Len() - footerOff
	footerCRC := crc32.Checksum(buf.Bytes()[footerOff:], crcTable)
	binary.LittleEndian.PutUint32(tmp[:4], footerCRC)
	buf.Write(tmp[:4])
	binary.LittleEndian.PutUint32(tmp[:4], uint32(footerLen))
	buf.Write(tmp[:4])
	buf.WriteString(segMagic)
	return buf.Bytes(), metas, nil
}

// readSegmentFooter opens a segment file and decodes its footer into a
// segMeta (startRow left to the caller). Corruption surfaces as a
// *CorruptError with the table/segment coordinates filled in.
func readSegmentFooter(path, table string, seg int) (segMeta, error) {
	var sm segMeta
	raw, err := os.ReadFile(path)
	if err != nil {
		return sm, err
	}
	sm, err = decodeFooter(raw, path)
	sm.fileCRC = crc32.Checksum(raw, crcTable)
	return sm, corruptAt(err, table, seg)
}

// corruptAt stamps table/segment coordinates onto a *CorruptError produced by
// a path-only decoder; any other error passes through untouched.
func corruptAt(err error, table string, seg int) error {
	var ce *CorruptError
	if errors.As(err, &ce) {
		ce.Table, ce.Segment = table, seg
	}
	return err
}

func decodeFooter(raw []byte, path string) (segMeta, error) {
	var sm segMeta
	bad := func(region string, off int64, format string, a ...any) (segMeta, error) {
		return sm, &CorruptError{Path: path, Region: region, Column: -1, Offset: off, Detail: fmt.Sprintf(format, a...)}
	}
	tail := len(segMagic) + 8 // footerCRC u32, footerLen u32, magic
	if len(raw) < tail {
		return bad(RegionFile, 0, "file is %d bytes, shorter than the %d-byte trailer", len(raw), tail)
	}
	if got := string(raw[len(raw)-len(segMagic):]); got != segMagic && got != segMagicV2 {
		return bad(RegionMagic, int64(len(raw)-len(segMagic)), "magic %q, want %q", got, segMagic)
	}
	footerCRC := binary.LittleEndian.Uint32(raw[len(raw)-tail : len(raw)-tail+4])
	footerLen := int(binary.LittleEndian.Uint32(raw[len(raw)-tail+4 : len(raw)-len(segMagic)]))
	footerOff := len(raw) - tail - footerLen
	if footerLen < 0 || footerOff < 0 {
		return bad(RegionFooter, 0, "footer length %d exceeds file size %d", footerLen, len(raw))
	}
	footer := raw[footerOff : footerOff+footerLen]
	if got := crc32.Checksum(footer, crcTable); got != footerCRC {
		return bad(RegionFooter, int64(footerOff), "footer checksum %08x, want %08x", got, footerCRC)
	}
	// Past the CRC, decode failures mean the footer was *written* wrong, not
	// damaged — still typed, so callers treat both uniformly.
	r := &byteReader{b: footer}
	fail := func(err error) (segMeta, error) {
		return bad(RegionFooter, int64(footerOff), "footer decode: %v", err)
	}
	rows, err := r.uvarint()
	if err != nil {
		return fail(err)
	}
	ncols, err := r.uvarint()
	if err != nil {
		return fail(err)
	}
	sm.rows = int(rows)
	sm.bytes = int64(len(raw))
	sm.cols = make([]colMeta, ncols)
	for ci := range sm.cols {
		cm := &sm.cols[ci]
		if cm.repr, err = r.ReadByte(); err != nil {
			return fail(err)
		}
		kb, err := r.ReadByte()
		if err != nil {
			return fail(err)
		}
		cm.kind = datum.Kind(kb)
		off, err := r.uvarint()
		if err != nil {
			return fail(err)
		}
		blockLen, err := r.uvarint()
		if err != nil {
			return fail(err)
		}
		crcb, err := r.take(4)
		if err != nil {
			return fail(err)
		}
		cm.crc = binary.LittleEndian.Uint32(crcb)
		nullCount, err := r.uvarint()
		if err != nil {
			return fail(err)
		}
		cm.off, cm.blockLen, cm.nullCount = int64(off), int64(blockLen), int(nullCount)
		if cm.off < 0 || cm.blockLen < 0 || cm.off+cm.blockLen > int64(footerOff) {
			return bad(RegionFooter, int64(footerOff), "column %d block [%d,+%d) outside data area of %d bytes", ci, cm.off, cm.blockLen, footerOff)
		}
		hz, err := r.ReadByte()
		if err != nil {
			return fail(err)
		}
		if hz != 0 {
			cm.hasZone = true
			if cm.min, err = decodeD(r); err != nil {
				return fail(err)
			}
			if cm.max, err = decodeD(r); err != nil {
				return fail(err)
			}
		}
		sk, err := r.take(sketchBytes)
		if err != nil {
			return fail(err)
		}
		copy(cm.sketch[:], sk)
	}
	return sm, nil
}

// readColumnBlock reads, CRC-verifies and decodes one column block from a
// segment file, checking the fault streams and charging the bytes to sc.
// Verification runs on every call; the caller's column cache is what makes
// hot reads pay the checksum only once. verify=false (Options.
// DisableChecksums) is the benchmark A/B arm and the escape hatch for
// salvage reads.
func readColumnBlock(sc *ScanCtx, path string, sm *segMeta, ord int, table string, seg int, verify bool) (*datum.Vec, error) {
	if err := sc.check("segment.open"); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := sc.check("segment.read"); err != nil {
		return nil, err
	}
	cm := &sm.cols[ord]
	block := make([]byte, cm.blockLen)
	if _, err := f.ReadAt(block, cm.off); err != nil {
		return nil, fmt.Errorf("storage: reading %s column %d: %w", path, ord, err)
	}
	sc.addBytes(cm.blockLen)
	blockErr := func(format string, a ...any) error {
		return &CorruptError{Table: table, Segment: seg, Path: path, Region: RegionBlock,
			Column: ord, Offset: cm.off, Detail: fmt.Sprintf(format, a...)}
	}
	if verify {
		if got := crc32.Checksum(block, crcTable); got != cm.crc {
			return nil, blockErr("block checksum %08x, want %08x", got, cm.crc)
		}
	}
	v, err := decodeColumn(block, sm.rows)
	if err != nil {
		return nil, blockErr("block decode: %v", err)
	}
	sc.addBlock(cm.repr)
	return v, nil
}

// --- zone-map predicates and segment dispositions ---

// ZoneOp mirrors the executor's comparison operators for zone-map reasoning
// (storage cannot import the logical package).
type ZoneOp uint8

// Comparison operators over datum.Compare's total order.
const (
	ZoneEq ZoneOp = iota
	ZoneNe
	ZoneLt
	ZoneLe
	ZoneGt
	ZoneGe
)

// ZonePredForm selects the shape of a ZonePred.
type ZonePredForm uint8

// Predicate forms the zone maps can reason about.
const (
	ZoneCmp       ZonePredForm = iota // column <op> constant
	ZoneIn                            // column IN (constants)
	ZoneIsNull                        // column IS NULL
	ZoneIsNotNull                     // column IS NOT NULL
	ZoneNever                         // predicate can never be TRUE (e.g. col = NULL)
)

// ZonePred is one conjunct of a scan predicate, compiled down to a base-table
// column ordinal so the storage layer can confront it with segment footers.
type ZonePred struct {
	Ord  int
	Form ZonePredForm
	Op   ZoneOp
	C    datum.D
	List []datum.D
}

// ZoneDisp is a segment's disposition under a predicate conjunction.
type ZoneDisp uint8

// Dispositions: ZoneNone segments cannot contain a matching row and are
// eliminated without I/O; ZoneAll segments match on every row (and contain no
// NULLs in the tested columns), so a scan may skip filter evaluation when the
// whole predicate was compiled; ZoneSome is everything in between.
const (
	ZoneNone ZoneDisp = iota
	ZoneSome
	ZoneAll
)

// dispPred evaluates one predicate against one column's footer entry.
func dispPred(cm *colMeta, rows int, p ZonePred) ZoneDisp {
	nonNull := rows - cm.nullCount
	switch p.Form {
	case ZoneNever:
		return ZoneNone
	case ZoneIsNull:
		switch {
		case cm.nullCount == 0:
			return ZoneNone
		case cm.nullCount == rows:
			return ZoneAll
		}
		return ZoneSome
	case ZoneIsNotNull:
		switch {
		case cm.nullCount == rows:
			return ZoneNone
		case cm.nullCount == 0:
			return ZoneAll
		}
		return ZoneSome
	case ZoneCmp:
		if nonNull == 0 {
			return ZoneNone // comparisons with NULL are never TRUE
		}
		if !cm.hasZone {
			return ZoneSome
		}
		cmpMin := datum.Compare(cm.min, p.C)
		cmpMax := datum.Compare(cm.max, p.C)
		noNulls := cm.nullCount == 0
		switch p.Op {
		case ZoneEq:
			if cmpMin > 0 || cmpMax < 0 {
				return ZoneNone
			}
			if cmpMin == 0 && cmpMax == 0 && noNulls {
				return ZoneAll
			}
		case ZoneNe:
			if cmpMin == 0 && cmpMax == 0 {
				return ZoneNone
			}
			if (cmpMin > 0 || cmpMax < 0) && noNulls {
				return ZoneAll
			}
		case ZoneLt:
			if cmpMin >= 0 {
				return ZoneNone
			}
			if cmpMax < 0 && noNulls {
				return ZoneAll
			}
		case ZoneLe:
			if cmpMin > 0 {
				return ZoneNone
			}
			if cmpMax <= 0 && noNulls {
				return ZoneAll
			}
		case ZoneGt:
			if cmpMax <= 0 {
				return ZoneNone
			}
			if cmpMin > 0 && noNulls {
				return ZoneAll
			}
		case ZoneGe:
			if cmpMax < 0 {
				return ZoneNone
			}
			if cmpMin >= 0 && noNulls {
				return ZoneAll
			}
		}
		return ZoneSome
	case ZoneIn:
		if nonNull == 0 {
			return ZoneNone
		}
		if !cm.hasZone {
			return ZoneSome
		}
		anyInRange := false
		pointMatch := false
		for _, e := range p.List {
			if datum.Compare(e, cm.min) >= 0 && datum.Compare(e, cm.max) <= 0 {
				anyInRange = true
				if datum.Compare(cm.min, cm.max) == 0 {
					pointMatch = true
				}
			}
		}
		if !anyInRange {
			return ZoneNone
		}
		if pointMatch && cm.nullCount == 0 {
			return ZoneAll // single-valued segment whose value is in the list
		}
		return ZoneSome
	}
	return ZoneSome
}

// dispSegment combines the conjunction: any conjunct that cannot match kills
// the segment; the segment is a full match only when every conjunct matches
// every row.
func dispSegment(sm *segMeta, preds []ZonePred) ZoneDisp {
	disp := ZoneAll
	for _, p := range preds {
		if p.Ord < 0 || (p.Form != ZoneNever && p.Ord >= len(sm.cols)) {
			disp = ZoneSome
			continue
		}
		var cm *colMeta
		if p.Form != ZoneNever {
			cm = &sm.cols[p.Ord]
		} else {
			cm = &colMeta{}
		}
		switch dispPred(cm, sm.rows, p) {
		case ZoneNone:
			return ZoneNone
		case ZoneSome:
			disp = ZoneSome
		}
	}
	return disp
}

// --- decoded-column cache ---

// colKey identifies one decoded column block: table identity, rewrite
// generation (SortBy bumps it), segment and column ordinal.
type colKey struct {
	tab  *Table
	gen  int
	seg  int
	ord  int
}

type colEntry struct {
	key   colKey
	vec   *datum.Vec
	bytes int64
}

// colCache is the store-wide LRU of decoded column vectors, bounded by a byte
// budget. Cached vectors are shared read-only; everyone copies out of them
// via AppendRange/D, never mutates.
type colCache struct {
	mu     sync.Mutex
	budget int64
	size   int64
	lru    *list.List // front = most recently used; values are *colEntry
	m      map[colKey]*list.Element
}

func newColCache(budget int64) *colCache {
	return &colCache{budget: budget, lru: list.New(), m: make(map[colKey]*list.Element)}
}

func (c *colCache) get(k colKey) *datum.Vec {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(el)
	return el.Value.(*colEntry).vec
}

func (c *colCache) put(k colKey, v *datum.Vec, bytes int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[k]; ok {
		return // a concurrent reader decoded it first; keep theirs
	}
	el := c.lru.PushFront(&colEntry{key: k, vec: v, bytes: bytes})
	c.m[k] = el
	c.size += bytes
	for c.size > c.budget && c.lru.Len() > 1 {
		back := c.lru.Back()
		e := back.Value.(*colEntry)
		c.lru.Remove(back)
		delete(c.m, e.key)
		c.size -= e.bytes
	}
}

// dropTable evicts every cached column of one table (table drop/rewrite).
func (c *colCache) dropTable(t *Table) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*colEntry)
		if e.key.tab == t {
			c.lru.Remove(el)
			delete(c.m, e.key)
			c.size -= e.bytes
		}
		el = next
	}
}
