package storage

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/faultfs"
)

func wideDef(name string) *catalog.Table {
	return &catalog.Table{
		Name: name,
		Cols: []catalog.Column{
			{Name: "i", Kind: datum.KindInt},
			{Name: "f", Kind: datum.KindFloat},
			{Name: "s", Kind: datum.KindString},
			{Name: "b", Kind: datum.KindBool},
		},
	}
}

// randWideRows generates rows over all four kinds with ~1/8 NULLs.
func randWideRows(n int, seed int64) []datum.Row {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]datum.Row, n)
	for i := range rows {
		r := datum.Row{
			datum.NewInt(rng.Int63n(1000) - 500),
			datum.NewFloat(rng.NormFloat64() * 100),
			datum.NewString(string(rune('a' + rng.Intn(26)))),
			datum.NewBool(rng.Intn(2) == 0),
		}
		for j := range r {
			if rng.Intn(8) == 0 {
				r[j] = datum.Null
			}
		}
		rows[i] = r
	}
	return rows
}

func newDiskStore(t *testing.T, segRows int) *Store {
	t.Helper()
	return NewStoreWith(StoreConfig{Dir: t.TempDir(), SegmentRows: segRows})
}

func sameRows(t *testing.T, got, want []datum.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d width %d, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			g, w := got[i][j], want[i][j]
			if g.IsNull() != w.IsNull() {
				t.Fatalf("row %d col %d: null mismatch (%v vs %v)", i, j, g, w)
			}
			if g.IsNull() {
				continue
			}
			// Bit-exact for floats (NaN != NaN under Compare semantics).
			if g.Kind() == datum.KindFloat && w.Kind() == datum.KindFloat {
				if math.Float64bits(g.Float()) != math.Float64bits(w.Float()) {
					t.Fatalf("row %d col %d: float bits %x vs %x", i, j, g.Float(), w.Float())
				}
				continue
			}
			if datum.Compare(g, w) != 0 || g.Kind() != w.Kind() {
				t.Fatalf("row %d col %d: %v (%v) vs %v (%v)", i, j, g, g.Kind(), w, w.Kind())
			}
		}
	}
}

// TestSegmentRoundTripAllKinds: rows of every kind with NULLs survive
// seal + read across several segments plus an unsealed tail, bit-exact.
func TestSegmentRoundTripAllKinds(t *testing.T) {
	s := newDiskStore(t, 16)
	tab, err := s.CreateTable(wideDef("rt"))
	if err != nil {
		t.Fatal(err)
	}
	want := randWideRows(100, 7) // 6 segments of 16 + 4-row tail
	if err := tab.InsertBatch(want); err != nil {
		t.Fatal(err)
	}
	if n := len(tab.SegmentLayout()); n != 6 {
		t.Fatalf("segments = %d, want 6", n)
	}
	got, err := tab.Rows(nil)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, got, want)

	// Arbitrary sub-ranges, including ones straddling segment boundaries.
	for _, r := range [][2]int{{0, 100}, {5, 21}, {16, 32}, {15, 17}, {90, 100}, {40, 40}} {
		got, err := tab.RowsRange(nil, r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, got, want[r[0]:r[1]])
	}

	// Point lookups.
	for _, id := range []int{0, 15, 16, 95, 99} {
		r, err := tab.Row(nil, id)
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, []datum.Row{r}, []datum.Row{want[id]})
	}
}

// TestSegmentReload: a fresh store over the same directory adopts the sealed
// segments and serves identical rows; the unsealed tail is lost unless
// Flush was called first.
func TestSegmentReload(t *testing.T) {
	dir := t.TempDir()
	want := randWideRows(70, 11)
	s1 := NewStoreWith(StoreConfig{Dir: dir, SegmentRows: 16})
	tab1, err := s1.CreateTable(wideDef("rl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab1.InsertBatch(want); err != nil {
		t.Fatal(err)
	}
	if err := tab1.Flush(); err != nil { // seal the 6-row tail
		t.Fatal(err)
	}

	s2 := NewStoreWith(StoreConfig{Dir: dir, SegmentRows: 16})
	tab2, err := s2.CreateTable(wideDef("rl"))
	if err != nil {
		t.Fatal(err)
	}
	if tab2.RowCount() != 70 {
		t.Fatalf("reloaded RowCount = %d, want 70", tab2.RowCount())
	}
	got, err := tab2.Rows(nil)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, got, want)
}

// TestSegmentSpecialFloats: NaN, infinities and -0.0 round-trip bit-exact,
// and a segment containing NaN drops its zone map (never pruned, never
// filter-skipped) rather than corrupting the comparison order.
func TestSegmentSpecialFloats(t *testing.T) {
	s := newDiskStore(t, 4)
	def := &catalog.Table{Name: "sf", Cols: []catalog.Column{{Name: "f", Kind: datum.KindFloat}}}
	tab, err := s.CreateTable(def)
	if err != nil {
		t.Fatal(err)
	}
	want := []datum.Row{
		{datum.NewFloat(math.NaN())},
		{datum.NewFloat(math.Inf(1))},
		{datum.NewFloat(math.Inf(-1))},
		{datum.NewFloat(math.Copysign(0, -1))},
	}
	if err := tab.InsertBatch(want); err != nil {
		t.Fatal(err)
	}
	got, err := tab.Rows(nil)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, got, want)
	// The NaN segment must report ZoneSome for any range predicate: pruning
	// it (ZoneNone) would lose rows, ZoneAll would skip the filter.
	disp := tab.SegmentDispositions([]ZonePred{{Ord: 0, Form: ZoneCmp, Op: ZoneGt, C: datum.NewFloat(1e300)}})
	if len(disp) != 1 || disp[0] != ZoneSome {
		t.Fatalf("disp over NaN segment = %v, want [ZoneSome]", disp)
	}
}

// TestZoneDispositions: with values laid out sorted across segments, range,
// equality, IN and IS NULL predicates classify segments exactly.
func TestZoneDispositions(t *testing.T) {
	s := newDiskStore(t, 4)
	def := &catalog.Table{Name: "zd", Cols: []catalog.Column{{Name: "a", Kind: datum.KindInt}}}
	tab, err := s.CreateTable(def)
	if err != nil {
		t.Fatal(err)
	}
	// Segment 0: 0..3, segment 1: 4..7, segment 2: 8,9,10,NULL.
	var rows []datum.Row
	for v := 0; v < 11; v++ {
		rows = append(rows, datum.Row{datum.NewInt(int64(v))})
	}
	rows = append(rows, datum.Row{datum.Null})
	if err := tab.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		pred ZonePred
		want []ZoneDisp
	}{
		{"lt4", ZonePred{Ord: 0, Form: ZoneCmp, Op: ZoneLt, C: datum.NewInt(4)}, []ZoneDisp{ZoneAll, ZoneNone, ZoneNone}},
		{"ge8", ZonePred{Ord: 0, Form: ZoneCmp, Op: ZoneGe, C: datum.NewInt(8)}, []ZoneDisp{ZoneNone, ZoneNone, ZoneSome}},
		{"eq5", ZonePred{Ord: 0, Form: ZoneCmp, Op: ZoneEq, C: datum.NewInt(5)}, []ZoneDisp{ZoneNone, ZoneSome, ZoneNone}},
		{"in", ZonePred{Ord: 0, Form: ZoneIn, List: []datum.D{datum.NewInt(2), datum.NewInt(9)}}, []ZoneDisp{ZoneSome, ZoneNone, ZoneSome}},
		{"isnull", ZonePred{Ord: 0, Form: ZoneIsNull}, []ZoneDisp{ZoneNone, ZoneNone, ZoneSome}},
		{"notnull", ZonePred{Ord: 0, Form: ZoneIsNotNull}, []ZoneDisp{ZoneAll, ZoneAll, ZoneSome}},
		{"never", ZonePred{Ord: 0, Form: ZoneNever}, []ZoneDisp{ZoneNone, ZoneNone, ZoneNone}},
	}
	for _, tc := range cases {
		got := tab.SegmentDispositions([]ZonePred{tc.pred})
		if len(got) != len(tc.want) {
			t.Fatalf("%s: %d dispositions, want %d", tc.name, len(got), len(tc.want))
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: segment %d = %v, want %v", tc.name, i, got[i], tc.want[i])
			}
		}
	}
	// Pruned page count shrinks under a selective predicate.
	all := tab.PrunedPageCount(nil)
	few := tab.PrunedPageCount([]ZonePred{cases[0].pred})
	if few > all {
		t.Fatalf("pruned pages %d > unpruned %d", few, all)
	}
}

// TestBoxedColumnRoundTrip: an INT column holding floats (legal via numeric
// coercion) forces the boxed per-datum encoding; kinds survive exactly.
func TestBoxedColumnRoundTrip(t *testing.T) {
	s := newDiskStore(t, 4)
	def := &catalog.Table{Name: "bx", Cols: []catalog.Column{{Name: "n", Kind: datum.KindInt}}}
	tab, err := s.CreateTable(def)
	if err != nil {
		t.Fatal(err)
	}
	want := []datum.Row{
		{datum.NewInt(1)},
		{datum.NewFloat(2.5)},
		{datum.Null},
		{datum.NewInt(-7)},
	}
	if err := tab.InsertBatch(want); err != nil {
		t.Fatal(err)
	}
	got, err := tab.Rows(nil)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, got, want)
}

// TestSegmentStatsMeta: footer aggregation gives exact NULL counts, sane
// distinct estimates and true extremes.
func TestSegmentStatsMeta(t *testing.T) {
	s := newDiskStore(t, 8)
	def := &catalog.Table{Name: "sm", Cols: []catalog.Column{{Name: "a", Kind: datum.KindInt}}}
	tab, err := s.CreateTable(def)
	if err != nil {
		t.Fatal(err)
	}
	var rows []datum.Row
	nulls := 0
	for i := 0; i < 64; i++ {
		if i%8 == 3 {
			rows = append(rows, datum.Row{datum.Null})
			nulls++
			continue
		}
		rows = append(rows, datum.Row{datum.NewInt(int64(i % 20))})
	}
	if err := tab.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	segRows, totalRows, pages, cols, ok := tab.SegmentStats()
	if !ok {
		t.Fatal("no segment stats for sealed table")
	}
	if segRows != 64 || totalRows != 64 {
		t.Fatalf("rows = %d/%d, want 64/64", segRows, totalRows)
	}
	if pages < 1 {
		t.Fatalf("pages = %d", pages)
	}
	cs := cols[0]
	if cs.NullCount != nulls {
		t.Fatalf("NullCount = %d, want %d", cs.NullCount, nulls)
	}
	if cs.Distinct < 10 || cs.Distinct > 40 { // true distinct is 20
		t.Fatalf("Distinct = %.1f, want ~20", cs.Distinct)
	}
	if !cs.HasZone || cs.Min.Int() != 0 || cs.Max.Int() != 19 {
		t.Fatalf("zone = %v [%v, %v], want [0, 19]", cs.HasZone, cs.Min, cs.Max)
	}
}

// TestFillColumnDiskVsMem: the typed bulk fills read from segments exactly
// what the in-memory table produces, for ranges and ID lists.
func TestFillColumnDiskVsMem(t *testing.T) {
	rows := randWideRows(90, 23)
	mem := NewTable(wideDef("m"))
	if err := mem.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	s := newDiskStore(t, 16)
	dsk, err := s.CreateTable(wideDef("m"))
	if err != nil {
		t.Fatal(err)
	}
	if err := dsk.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for ord := 0; ord < 4; ord++ {
		kind := wideDef("m").Cols[ord].Kind
		for trial := 0; trial < 20; trial++ {
			lo := rng.Intn(90)
			hi := lo + rng.Intn(90-lo+1)
			a, b := datum.NewVec(kind, 0), datum.NewVec(kind, 0)
			if err := mem.FillColumnRange(nil, ord, lo, hi, a); err != nil {
				t.Fatal(err)
			}
			if err := dsk.FillColumnRange(nil, ord, lo, hi, b); err != nil {
				t.Fatal(err)
			}
			compareVecs(t, a, b)

			var ids []int
			for i := lo; i < hi; i += 1 + rng.Intn(3) {
				ids = append(ids, i)
			}
			a.Reset(kind)
			b.Reset(kind)
			if err := mem.FillColumnIDs(nil, ord, ids, a); err != nil {
				t.Fatal(err)
			}
			if err := dsk.FillColumnIDs(nil, ord, ids, b); err != nil {
				t.Fatal(err)
			}
			compareVecs(t, a, b)
		}
	}
}

func compareVecs(t *testing.T, a, b *datum.Vec) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("vec len %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		da, db := a.D(i), b.D(i)
		if da.IsNull() != db.IsNull() {
			t.Fatalf("elem %d null mismatch", i)
		}
		if !da.IsNull() && datum.Compare(da, db) != 0 {
			t.Fatalf("elem %d: %v vs %v", i, da, db)
		}
	}
}

// TestSegmentFaultInjection: injected failures on every segment I/O stream
// surface as the typed error, deterministically, and the table remains
// usable once the fault clears.
func TestSegmentFaultInjection(t *testing.T) {
	boom := errors.New("simulated segment I/O failure")

	// Read path: segment.open and segment.read via ScanCtx.
	for _, op := range []string{"segment.open", "segment.read"} {
		s := newDiskStore(t, 8)
		tab, err := s.CreateTable(wideDef("fr"))
		if err != nil {
			t.Fatal(err)
		}
		if err := tab.InsertBatch(randWideRows(40, 3)); err != nil {
			t.Fatal(err)
		}
		sc := &ScanCtx{Faults: faultfs.New(faultfs.Rule{Op: op, After: 1, Err: boom})}
		if _, err := tab.Rows(sc); !errors.Is(err, boom) {
			t.Fatalf("%s: got %v, want injected error", op, err)
		}
		// Default typed error when the rule carries none.
		sc = &ScanCtx{Faults: faultfs.New(faultfs.Rule{Op: op, After: 1})}
		if _, err := tab.Rows(sc); !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("%s: got %v, want faultfs.ErrInjected", op, err)
		}
		// Fault cleared: same table serves rows again (cache was not
		// poisoned by the failed read).
		if rows, err := tab.Rows(nil); err != nil || len(rows) != 40 {
			t.Fatalf("%s: after fault cleared: %d rows, err %v", op, len(rows), err)
		}
	}

	// Write path: segment.create / segment.write via the store's injector.
	for _, op := range []string{"segment.create", "segment.write"} {
		inj := faultfs.New(faultfs.Rule{Op: op, After: 1, Err: boom})
		s := NewStoreWith(StoreConfig{Dir: t.TempDir(), SegmentRows: 8, Faults: inj})
		tab, err := s.CreateTable(wideDef("fw"))
		if err != nil {
			t.Fatal(err)
		}
		if err := tab.InsertBatch(randWideRows(40, 3)); !errors.Is(err, boom) {
			t.Fatalf("%s: got %v, want injected error", op, err)
		}
	}
}

// TestSortByDiskRewrite: sorting a disk-backed table rewrites its segments
// in order, leaves no stale files behind, and survives a reload.
func TestSortByDiskRewrite(t *testing.T) {
	dir := t.TempDir()
	s := NewStoreWith(StoreConfig{Dir: dir, SegmentRows: 8})
	def := &catalog.Table{Name: "sb", Cols: []catalog.Column{{Name: "a", Kind: datum.KindInt}}}
	tab, err := s.CreateTable(def)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	var rows []datum.Row
	for i := 0; i < 50; i++ {
		rows = append(rows, datum.Row{datum.NewInt(rng.Int63n(1000))})
	}
	if err := tab.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	if err := tab.SortBy([]datum.SortSpec{{Col: 0}}); err != nil {
		t.Fatal(err)
	}
	got, err := tab.Rows(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1][0].Int() > got[i][0].Int() {
			t.Fatal("not sorted after SortBy")
		}
	}
	// Exactly the sealed segments remain on disk — no leftovers.
	files, err := filepath.Glob(filepath.Join(dir, "sb", "seg-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(tab.SegmentLayout()) {
		t.Fatalf("%d files for %d segments", len(files), len(tab.SegmentLayout()))
	}
	// After sorting, zone maps make a point predicate prune to few segments.
	disp := tab.SegmentDispositions([]ZonePred{{Ord: 0, Form: ZoneCmp, Op: ZoneEq, C: got[0][0]}})
	none := 0
	for _, d := range disp {
		if d == ZoneNone {
			none++
		}
	}
	if len(disp) > 2 && none == 0 {
		t.Error("sorted table should prune segments for a point predicate")
	}
}

// TestSegmentBytesReadAccounting: cold reads report bytes, warm (cached)
// reads report zero.
func TestSegmentBytesReadAccounting(t *testing.T) {
	s := newDiskStore(t, 16)
	tab, err := s.CreateTable(wideDef("br"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.InsertBatch(randWideRows(64, 29)); err != nil {
		t.Fatal(err)
	}
	v := datum.NewVec(datum.KindInt, 0)
	cold := &ScanCtx{}
	if err := tab.FillColumnRange(cold, 0, 0, 64, v); err != nil {
		t.Fatal(err)
	}
	if cold.BytesRead == 0 {
		t.Fatal("cold read reported zero bytes")
	}
	v.Reset(datum.KindInt)
	warm := &ScanCtx{}
	if err := tab.FillColumnRange(warm, 0, 0, 64, v); err != nil {
		t.Fatal(err)
	}
	if warm.BytesRead != 0 {
		t.Fatalf("warm read reported %d bytes, want 0 (column cache)", warm.BytesRead)
	}
}

// TestCorruptSegmentRejected: a truncated segment file is soft-adopted at
// recovery — the table opens, the report carries a typed corruption with
// coordinates, row counts stay intact (the manifest remembers them), and
// reading the damaged range fails with ErrSegmentCorrupt instead of serving
// garbage while the undamaged segment still serves.
func TestCorruptSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	s := NewStoreWith(StoreConfig{Dir: dir, SegmentRows: 8})
	tab, err := s.CreateTable(wideDef("cr"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.InsertBatch(randWideRows(16, 31)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "cr", segFileName(0, 0))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := NewStoreWith(StoreConfig{Dir: dir, SegmentRows: 8})
	tab2, err := s2.CreateTable(wideDef("cr"))
	if err != nil {
		t.Fatalf("soft adoption should not fail table open: %v", err)
	}
	reps := s2.Recovery()
	if len(reps) != 1 || len(reps[0].Corrupt) != 1 {
		t.Fatalf("recovery reports = %+v, want one report with one corruption", reps)
	}
	ce := reps[0].Corrupt[0]
	if ce.Table != "cr" || ce.Segment != 0 {
		t.Fatalf("corruption at table %q segment %d, want cr/0", ce.Table, ce.Segment)
	}
	if !errors.Is(ce, ErrSegmentCorrupt) {
		t.Fatalf("corruption %v does not match ErrSegmentCorrupt", ce)
	}
	if got := tab2.RowCount(); got != 16 {
		t.Fatalf("RowCount = %d, want 16 (row-id space preserved)", got)
	}
	if _, err := tab2.RowsRange(nil, 0, 8); !errors.Is(err, ErrSegmentCorrupt) {
		t.Fatalf("reading the damaged segment: got %v, want ErrSegmentCorrupt", err)
	}
	if rows, err := tab2.RowsRange(nil, 8, 16); err != nil || len(rows) != 8 {
		t.Fatalf("undamaged segment should still serve: rows=%d err=%v", len(rows), err)
	}
}

// BenchmarkFillColumnRange measures the typed bulk column fill against the
// in-memory heap (the hot path of every vectorized scan).
func BenchmarkFillColumnRange(b *testing.B) {
	const n = 65536
	tab := NewTable(&catalog.Table{Name: "bench", Cols: []catalog.Column{
		{Name: "a", Kind: datum.KindInt},
		{Name: "f", Kind: datum.KindFloat},
	}})
	rows := make([]datum.Row, n)
	for i := range rows {
		rows[i] = datum.Row{datum.NewInt(int64(i)), datum.NewFloat(float64(i) * 0.5)}
	}
	if err := tab.InsertBatch(rows); err != nil {
		b.Fatal(err)
	}
	for _, ord := range []int{0, 1} {
		kind := tab.Def.Cols[ord].Kind
		name := tab.Def.Cols[ord].Name
		b.Run(name, func(b *testing.B) {
			v := datum.NewVec(kind, n)
			b.ReportAllocs()
			b.SetBytes(int64(n * 8))
			for i := 0; i < b.N; i++ {
				v.Reset(kind)
				if err := tab.FillColumnRange(nil, ord, 0, n, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
