// Package storage is the storage engine: heap tables with page accounting
// and ordered (B-tree-like) secondary indexes, in two modes. The default
// in-memory mode keeps rows on the heap with modeled page counts (see
// DESIGN.md §4). Disk-backed mode (StoreConfig.Dir) additionally seals rows
// into persistent columnar segment files (segment.go): inserts buffer in an
// in-memory tail and every SegmentRows rows are written out as typed column
// blocks with zone-map footers, which scans read back through a store-wide
// decoded-column LRU cache. Row ids are positional across sealed segments
// then the tail, so both modes expose the same id space.
package storage

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/faultfs"
)

// PageSize is the page size in bytes: modeled for in-memory tables, real for
// segment files.
const PageSize = 8192

// DefaultSegmentRows is the sealed-segment row count when StoreConfig leaves
// SegmentRows zero. A multiple of the executor's morsel size, so morsels
// never straddle a segment boundary.
const DefaultSegmentRows = 4096

// defaultCacheBytes bounds the decoded-column cache when StoreConfig leaves
// CacheBytes zero.
const defaultCacheBytes = 64 << 20

// Table is the stored data for one catalog table.
type Table struct {
	Def *catalog.Table
	// rows is the in-memory heap — all rows in in-memory mode, the unsealed
	// tail in disk mode.
	rows []datum.Row
	// bytes is the accumulated modeled width of the rows slice.
	bytes int
	// indexes are built lazily and invalidated by writes.
	indexes map[string]*IndexData
	mu      sync.RWMutex
	// store owns the decoded-column cache and write-path fault injector;
	// nil for standalone in-memory tables (NewTable).
	store *Store
	// seg holds the sealed-segment state; nil selects in-memory mode.
	seg *segTable
}

// segTable is the disk-backed half of a Table.
type segTable struct {
	dir     string
	segRows int
	// gen is bumped whenever segment files are rewritten (SortBy), so stale
	// cache entries can never be read back.
	gen        int
	nextID     int
	segs       []segMeta
	sealedRows int
	diskBytes  int64
	// dicts interns decoded string dictionaries by content, so segments that
	// sealed the same value set share one *StrDict pointer — which is what
	// lets a multi-segment scan keep appending codes instead of materializing
	// at every segment boundary (Vec.AppendRange's same-dict fast path is
	// pointer identity). Guarded by its own mutex because column reads hold
	// only the table's read lock.
	dictMu sync.Mutex
	dicts  map[string]*datum.StrDict
}

// internDict returns the canonical *StrDict for d's contents, registering d
// as canonical on first sight. Codes need no translation: equal contents
// sort identically, so equal dictionaries assign equal codes.
func (st *segTable) internDict(d *datum.StrDict) *datum.StrDict {
	var sb strings.Builder
	for _, s := range d.Vals {
		fmt.Fprintf(&sb, "%d:", len(s))
		sb.WriteString(s)
	}
	key := sb.String()
	st.dictMu.Lock()
	defer st.dictMu.Unlock()
	if st.dicts == nil {
		st.dicts = make(map[string]*datum.StrDict)
	}
	if e, ok := st.dicts[key]; ok {
		return e
	}
	st.dicts[key] = d
	return d
}

// NewTable creates empty in-memory storage for a catalog table.
func NewTable(def *catalog.Table) *Table {
	return &Table{Def: def, indexes: make(map[string]*IndexData)}
}

// validateRow checks arity, kinds and NOT NULL against the table definition.
func (t *Table) validateRow(row datum.Row) error {
	if len(row) != len(t.Def.Cols) {
		return fmt.Errorf("storage: table %s expects %d columns, got %d", t.Def.Name, len(t.Def.Cols), len(row))
	}
	for i, d := range row {
		col := t.Def.Cols[i]
		if d.IsNull() {
			if col.NotNull {
				return fmt.Errorf("storage: NULL in NOT NULL column %s.%s", t.Def.Name, col.Name)
			}
			continue
		}
		if d.Kind() != col.Kind && !(d.Kind().Numeric() && col.Kind.Numeric()) {
			return fmt.Errorf("storage: column %s.%s expects %s, got %s", t.Def.Name, col.Name, col.Kind, d.Kind())
		}
	}
	return nil
}

// Insert appends a row. The row must match the table arity and column kinds
// (NULLs allowed unless the column is NOT NULL).
func (t *Table) Insert(row datum.Row) error {
	return t.InsertBatch([]datum.Row{row})
}

// InsertBatch inserts many rows atomically: every row is validated before any
// is appended, the lock is taken once, and indexes are invalidated once —
// not the insert-per-row loop this used to be, which re-allocated the index
// map for every single row. In disk mode, full SegmentRows chunks of the tail
// are sealed to segment files before the lock is released.
func (t *Table) InsertBatch(rows []datum.Row) error {
	for _, r := range rows {
		if err := t.validateRow(r); err != nil {
			return err
		}
	}
	if len(rows) == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range rows {
		t.rows = append(t.rows, r.Clone())
		t.bytes += r.Size()
	}
	if len(t.indexes) > 0 {
		t.indexes = make(map[string]*IndexData) // invalidate
	}
	if t.seg != nil && len(t.rows) >= t.seg.segRows {
		sizes := make([]int, len(t.rows)/t.seg.segRows)
		for i := range sizes {
			sizes[i] = t.seg.segRows
		}
		return t.sealChunksLocked(sizes)
	}
	return nil
}

// Flush seals the unsealed tail of a disk-backed table into a (possibly
// short) segment, making every row durable. A no-op for in-memory tables and
// empty tails.
func (t *Table) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seg == nil || len(t.rows) == 0 {
		return nil
	}
	return t.sealChunksLocked([]int{len(t.rows)})
}

// pendingSeg is one encoded-but-not-yet-adopted segment.
type pendingSeg struct {
	sm    segMeta
	raw   []byte
	entry manEntry
}

// faults returns the owning store's write-path injector (nil-safe).
func (t *Table) faults() *faultfs.Injector {
	if t.store == nil {
		return nil
	}
	return t.store.cfg.Faults
}

// compress reports whether seal-time block compression is enabled (nil-safe).
func (t *Table) compress() bool {
	return t.store == nil || !t.store.cfg.DisableCompression
}

// retryIO applies the store's transient-fault retry policy (nil-safe).
func (t *Table) retryIO(f func() error) error {
	if t.store == nil {
		return f()
	}
	return t.store.retryIO(f)
}

// encodeChunk encodes rows as one pending segment with the given id and
// start row. Pure computation plus the historical "segment.create"/
// "segment.write" encode fault streams; touches no table state.
func (t *Table) encodeChunk(rows []datum.Row, gen, id, startRow int) (pendingSeg, error) {
	vecs := make([]*datum.Vec, len(t.Def.Cols))
	for ci, col := range t.Def.Cols {
		v := datum.NewVec(col.Kind, len(rows))
		v.AppendRowsCol(rows, ci)
		vecs[ci] = v
	}
	raw, metas, err := encodeSegment(vecs, t.faults(), t.compress())
	if err != nil {
		return pendingSeg{}, err
	}
	crc := crc32.Checksum(raw, crcTable)
	sm := segMeta{id: id, startRow: startRow, rows: len(rows), bytes: int64(len(raw)), fileCRC: crc, cols: metas}
	entry := manEntry{file: segFileName(gen, id), id: id, rows: len(rows), bytes: sm.bytes, crc: crc}
	return pendingSeg{sm: sm, raw: raw, entry: entry}, nil
}

// publishLocked runs the durability protocol for a batch of pending
// segments: each file is written to a temp sibling, fsynced and renamed;
// the directory is fsynced once; then one manifest record (built by rec from
// the entries) adopts them all. Any error leaves the table state untouched —
// unpublished files are recovery's quarantine fodder. Transient faults are
// retried per step. Caller holds t.mu.
func (t *Table) publishLocked(pend []pendingSeg, rec func([]manEntry) string) error {
	faults := t.faults()
	entries := make([]manEntry, len(pend))
	for i, p := range pend {
		entries[i] = p.entry
		path := filepath.Join(t.seg.dir, p.entry.file)
		raw := p.raw
		if err := t.retryIO(func() error { return writeSegmentFile(path, raw, faults) }); err != nil {
			return err
		}
	}
	if err := t.retryIO(func() error { return syncDir(t.seg.dir, faults) }); err != nil {
		return err
	}
	// The base offset is captured once, outside the retry loop: each attempt
	// truncates back to it before writing, so a transient failure after the
	// bytes hit the file cannot leave the record behind to be appended twice
	// (replay would adopt every segment twice) or strand torn bytes in the
	// manifest interior.
	base, err := manifestSize(t.seg.dir)
	if err != nil {
		return err
	}
	return t.retryIO(func() error { return appendManifest(t.seg.dir, rec(entries), base, faults) })
}

// sealChunksLocked seals consecutive chunks from the front of the tail —
// sizes[i] rows each — as one atomically-adopted batch: all files are
// prepared and published under a single manifest record, and only then is
// the in-memory state mutated. A failure anywhere leaves both the disk state
// (a manifest generation) and the in-memory tail (every buffered row still
// buffered, counted once) exactly as before the call, so a later Flush
// simply retries. Caller holds t.mu.
func (t *Table) sealChunksLocked(sizes []int) error {
	pend := make([]pendingSeg, len(sizes))
	off := 0
	for i, n := range sizes {
		p, err := t.encodeChunk(t.rows[off:off+n], t.seg.gen, t.seg.nextID+i, t.seg.sealedRows+off)
		if err != nil {
			return err
		}
		pend[i] = p
		off += n
	}
	if err := t.publishLocked(pend, func(entries []manEntry) string {
		parts := make([]string, 1, len(entries)+1)
		parts[0] = "add"
		for _, e := range entries {
			parts = append(parts, e.String())
		}
		return strings.Join(parts, " ")
	}); err != nil {
		return err
	}
	// Commit point passed: adopt in memory.
	for _, p := range pend {
		t.seg.segs = append(t.seg.segs, p.sm)
		t.seg.nextID = p.sm.id + 1
		t.seg.sealedRows += p.sm.rows
		t.seg.diskBytes += p.sm.bytes
	}
	var w int
	for _, r := range t.rows[:off] {
		w += r.Size()
	}
	t.bytes -= w
	t.rows = append(t.rows[:0], t.rows[off:]...)
	return nil
}

// segFileName names a segment file by generation and id; zero-padded so
// lexicographic order matches adoption order within a generation.
func segFileName(gen, id int) string {
	return fmt.Sprintf("seg-%06d-%06d.seg", gen, id)
}

func (t *Table) segPath(id int) string {
	return filepath.Join(t.seg.dir, segFileName(t.seg.gen, id))
}

// cache returns the owning store's decoded-column cache (nil-safe).
func (t *Table) cache() *colCache {
	if t.store == nil {
		return nil
	}
	return t.store.cache
}

// readColumnLocked returns the decoded column ord of segment si, serving from
// the cache when possible. Cache misses read, CRC-verify and decode the block
// (so hot reads pay the checksum once), retrying transient faults. Segments
// soft-adopted as corrupt at recovery fail immediately with their typed
// error. Caller holds t.mu (read or write).
func (t *Table) readColumnLocked(sc *ScanCtx, si, ord int) (*datum.Vec, error) {
	sm := &t.seg.segs[si]
	if sm.corrupt != nil {
		return nil, sm.corrupt
	}
	key := colKey{tab: t, gen: t.seg.gen, seg: sm.id, ord: ord}
	if v := t.cache().get(key); v != nil {
		return v, nil
	}
	verify := t.store == nil || !t.store.cfg.DisableChecksums
	var v *datum.Vec
	err := t.retryIO(func() error {
		var rerr error
		v, rerr = readColumnBlock(sc, t.segPath(sm.id), sm, ord, t.Def.Name, sm.id, verify)
		return rerr
	})
	if err != nil {
		return nil, err
	}
	if v.Dict != nil {
		v.Dict = t.seg.internDict(v.Dict)
	}
	t.cache().put(key, v, vecCacheBytes(v))
	return v, nil
}

// vecCacheBytes is the cache charge of a decoded column vector: the actual
// heap payload it pins, so the cache budget is honest for string-heavy
// tables (a string column charges the sum of its string lengths plus a
// header per slot, not the encoded block length). Dictionary columns charge
// 8 bytes per code plus the dictionary payload — the compression win shows
// up as more columns fitting in the same budget. RLE columns are cached
// expanded, and charge the expanded size.
func vecCacheBytes(v *datum.Vec) int64 {
	n := int64(v.Len())
	var b int64
	switch {
	case v.Boxed():
		for i := 0; i < v.Len(); i++ {
			b += int64(v.D(i).Size())
		}
		b += 16 * n // slot overhead of the []D backing
	case v.Dict != nil:
		b = 8*n + v.Dict.Bytes()
	default:
		switch v.Kind() {
		case datum.KindInt, datum.KindBool, datum.KindFloat:
			b = 8 * n
		case datum.KindString:
			for _, s := range v.Strs {
				b += int64(16 + len(s))
			}
		}
	}
	if v.NumNulls() > 0 {
		b += (n + 63) / 64 * 8
	}
	return b
}

// segIndexLocked returns the index of the segment containing row id (which
// must be < sealedRows).
func (t *Table) segIndexLocked(id int) int {
	segs := t.seg.segs
	return sort.Search(len(segs), func(i int) bool {
		return segs[i].startRow+segs[i].rows > id
	})
}

// RowCount returns the number of stored rows.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rowCountLocked()
}

func (t *Table) rowCountLocked() int {
	if t.seg != nil {
		return t.seg.sealedRows + len(t.rows)
	}
	return len(t.rows)
}

// PageCount returns the number of pages the table occupies: modeled from row
// widths in in-memory mode, real file bytes (plus the modeled tail) in disk
// mode.
func (t *Table) PageCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	total := int64(t.bytes)
	if t.seg != nil {
		total += t.seg.diskBytes
	}
	if total == 0 {
		return 0
	}
	return int((total + PageSize - 1) / PageSize)
}

// Rows materializes every stored row. Callers must not mutate them. For
// in-memory tables this is the heap slice itself and cannot fail.
func (t *Table) Rows(sc *ScanCtx) ([]datum.Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.seg == nil {
		return t.rows, nil
	}
	return t.rowsRangeLocked(sc, 0, t.rowCountLocked())
}

// RowsRange materializes rows [lo, hi). For in-memory tables this is a
// subslice of the heap; for disk tables the range is gathered from decoded
// segment columns and the tail.
func (t *Table) RowsRange(sc *ScanCtx, lo, hi int) ([]datum.Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.seg == nil {
		return t.rows[lo:hi], nil
	}
	return t.rowsRangeLocked(sc, lo, hi)
}

func (t *Table) rowsRangeLocked(sc *ScanCtx, lo, hi int) ([]datum.Row, error) {
	if hi <= lo {
		return nil, nil
	}
	out := make([]datum.Row, 0, hi-lo)
	ncols := len(t.Def.Cols)
	pos := lo
	for pos < hi && pos < t.seg.sealedRows {
		si := t.segIndexLocked(pos)
		sm := &t.seg.segs[si]
		segLo := pos - sm.startRow
		segHi := min(hi-sm.startRow, sm.rows)
		cols := make([]*datum.Vec, ncols)
		for ci := 0; ci < ncols; ci++ {
			v, err := t.readColumnLocked(sc, si, ci)
			if err != nil {
				return nil, err
			}
			cols[ci] = v
		}
		for i := segLo; i < segHi; i++ {
			r := make(datum.Row, ncols)
			for ci := 0; ci < ncols; ci++ {
				r[ci] = cols[ci].D(i)
			}
			out = append(out, r)
		}
		pos = sm.startRow + segHi
	}
	for ; pos < hi; pos++ {
		out = append(out, t.rows[pos-t.seg.sealedRows])
	}
	return out, nil
}

// Row returns the row with the given row id.
func (t *Table) Row(sc *ScanCtx, id int) (datum.Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.seg == nil {
		return t.rows[id], nil
	}
	if id >= t.seg.sealedRows {
		return t.rows[id-t.seg.sealedRows], nil
	}
	si := t.segIndexLocked(id)
	sm := &t.seg.segs[si]
	r := make(datum.Row, len(t.Def.Cols))
	for ci := range r {
		v, err := t.readColumnLocked(sc, si, ci)
		if err != nil {
			return nil, err
		}
		r[ci] = v.D(id - sm.startRow)
	}
	return r, nil
}

// ColValue returns one column of one row — the point-lookup form used by
// index-range post-filters, which would waste work materializing whole rows.
func (t *Table) ColValue(sc *ScanCtx, id, ord int) (datum.D, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.seg == nil {
		return t.rows[id][ord], nil
	}
	if id >= t.seg.sealedRows {
		return t.rows[id-t.seg.sealedRows][ord], nil
	}
	si := t.segIndexLocked(id)
	v, err := t.readColumnLocked(sc, si, ord)
	if err != nil {
		return datum.Null, err
	}
	return v.D(id - t.seg.segs[si].startRow), nil
}

// FillColumnRange appends column ord of rows [lo, hi) to v — the
// batch-granular scan API of the vectorized execution path: one lock
// acquisition and one column fill per morsel instead of a row-at-a-time
// iterator. In-memory rows take the typed bulk-append fast path
// (Vec.AppendRowsCol); disk rows bulk-copy out of decoded segment columns
// (Vec.AppendRange). Values whose dynamic kind disagrees with v's kind
// (numeric coercion allows that) switch v to its boxed representation, so
// the fill itself never fails — only segment I/O can.
func (t *Table) FillColumnRange(sc *ScanCtx, ord, lo, hi int, v *datum.Vec) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.seg == nil {
		v.AppendRowsCol(t.rows[lo:hi], ord)
		return nil
	}
	pos := lo
	for pos < hi && pos < t.seg.sealedRows {
		si := t.segIndexLocked(pos)
		sm := &t.seg.segs[si]
		col, err := t.readColumnLocked(sc, si, ord)
		if err != nil {
			return err
		}
		segHi := min(hi-sm.startRow, sm.rows)
		v.AppendRange(col, pos-sm.startRow, segHi)
		pos = sm.startRow + segHi
	}
	if pos < hi {
		v.AppendRowsCol(t.rows[pos-t.seg.sealedRows:hi-t.seg.sealedRows], ord)
	}
	return nil
}

// FillColumnIDs appends column ord of the rows with the given ids to v, in
// id order — the gather form of the batch scan API used by index scans and
// late materialization of filtered scans.
func (t *Table) FillColumnIDs(sc *ScanCtx, ord int, ids []int, v *datum.Vec) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.seg == nil {
		for _, id := range ids {
			v.AppendD(t.rows[id][ord])
		}
		return nil
	}
	// Ids are usually ascending (selection vectors, index postings), so the
	// decoded column of the previous id is cached locally across iterations.
	curSeg := -1
	var cur *datum.Vec
	for _, id := range ids {
		if id >= t.seg.sealedRows {
			v.AppendD(t.rows[id-t.seg.sealedRows][ord])
			continue
		}
		si := t.segIndexLocked(id)
		if si != curSeg {
			col, err := t.readColumnLocked(sc, si, ord)
			if err != nil {
				return err
			}
			curSeg, cur = si, col
		}
		v.AppendVec(cur, id-t.seg.segs[si].startRow)
	}
	return nil
}

// SortBy physically reorders the heap by the given sort spec — used to
// realize a clustered index. Disk-backed tables are rewritten: all rows
// (sealed and tail) are re-sealed from the sorted order under a new cache
// generation, so SortBy also implies a Flush — the tail is empty afterwards
// and no previously durable row loses durability.
func (t *Table) SortBy(spec []datum.SortSpec) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seg != nil {
		all, err := t.rowsRangeLocked(nil, 0, t.rowCountLocked())
		if err != nil {
			return err
		}
		sort.SliceStable(all, func(i, j int) bool {
			return datum.CompareRows(all[i], all[j], spec) < 0
		})
		if err := t.rewriteLocked(all); err != nil {
			return err
		}
	} else {
		sort.SliceStable(t.rows, func(i, j int) bool {
			return datum.CompareRows(t.rows[i], t.rows[j], spec) < 0
		})
	}
	t.indexes = make(map[string]*IndexData)
	return nil
}

// rewriteLocked replaces all sealed segments and the tail with the given
// rows: the new generation's files are fully written and published by one
// manifest "switch" record before any in-memory state changes, so a failure
// anywhere leaves the old generation serving untouched (new-gen orphans are
// quarantined at the next recovery). Every row is sealed — full segments plus
// a final short one for any remainder — because the switch record deletes the
// old generation, and rows that were durable before the rewrite (a previously
// Flushed short segment, now shuffled anywhere in the sorted order) must stay
// durable after it. After the switch commits, the old generation's files are
// deleted best-effort — the manifest no longer references them, so a crash
// mid-delete only leaves quarantine fodder. Caller holds t.mu.
func (t *Table) rewriteLocked(all []datum.Row) error {
	newGen := t.seg.gen + 1
	pend := make([]pendingSeg, 0, len(all)/t.seg.segRows+1)
	off := 0
	for off < len(all) {
		n := min(t.seg.segRows, len(all)-off)
		p, err := t.encodeChunk(all[off:off+n], newGen, len(pend), off)
		if err != nil {
			return err
		}
		pend = append(pend, p)
		off += n
	}
	if err := t.publishLocked(pend, func(entries []manEntry) string {
		parts := make([]string, 2, len(entries)+2)
		parts[0], parts[1] = "switch", fmt.Sprintf("%d", newGen)
		for _, e := range entries {
			parts = append(parts, e.String())
		}
		return strings.Join(parts, " ")
	}); err != nil {
		return err
	}
	// Commit point passed: swap in the new generation.
	oldFiles := make([]string, 0, len(t.seg.segs))
	for _, sm := range t.seg.segs {
		oldFiles = append(oldFiles, t.segPath(sm.id))
	}
	t.cache().dropTable(t)
	t.seg.dictMu.Lock()
	t.seg.dicts = nil
	t.seg.dictMu.Unlock()
	t.seg.gen = newGen
	t.seg.segs = t.seg.segs[:0]
	t.seg.sealedRows = 0
	t.seg.diskBytes = 0
	for _, p := range pend {
		t.seg.segs = append(t.seg.segs, p.sm)
		t.seg.sealedRows += p.sm.rows
		t.seg.diskBytes += p.sm.bytes
	}
	t.seg.nextID = len(pend)
	t.rows = t.rows[:0]
	t.bytes = 0
	for _, f := range oldFiles {
		os.Remove(f)
	}
	return nil
}

// SegmentLayout returns the sealed segments in row order, or nil for
// in-memory tables. Rows at ids >= the last segment's end live in the
// unsealed tail.
func (t *Table) SegmentLayout() []SegmentInfo {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.seg == nil || len(t.seg.segs) == 0 {
		return nil
	}
	out := make([]SegmentInfo, len(t.seg.segs))
	for i, sm := range t.seg.segs {
		out[i] = SegmentInfo{ID: sm.id, StartRow: sm.startRow, Rows: sm.rows, Bytes: sm.bytes}
	}
	return out
}

// SegmentDispositions confronts each sealed segment's zone maps with the
// compiled predicate conjunction. A nil or empty preds slice yields ZoneSome
// everywhere (nothing can be eliminated, nothing is known to fully match).
func (t *Table) SegmentDispositions(preds []ZonePred) []ZoneDisp {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.seg == nil || len(t.seg.segs) == 0 {
		return nil
	}
	out := make([]ZoneDisp, len(t.seg.segs))
	for i := range t.seg.segs {
		if len(preds) == 0 {
			out[i] = ZoneSome
			continue
		}
		out[i] = dispSegment(&t.seg.segs[i], preds)
	}
	return out
}

// PrunedPageCount returns the table's page count with zone-map-eliminated
// segments removed — what a sequential scan under the given predicates
// actually reads. Returns -1 when the table has no sealed segments (nothing
// to prune against).
func (t *Table) PrunedPageCount(preds []ZonePred) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.seg == nil || len(t.seg.segs) == 0 {
		return -1
	}
	var bytes int64
	for i := range t.seg.segs {
		if dispSegment(&t.seg.segs[i], preds) != ZoneNone {
			bytes += t.seg.segs[i].bytes
		}
	}
	bytes += int64(t.bytes) // unsealed tail is always read
	if bytes == 0 {
		return 0
	}
	return int((bytes + PageSize - 1) / PageSize)
}

// SegColStats is the per-column summary derived from sealed-segment footers.
type SegColStats struct {
	NullCount int
	// Distinct is the linear-counting estimate over the unioned per-segment
	// sketches — coarse (the 256-bit sketch saturates around a few hundred
	// values) but free.
	Distinct float64
	HasZone  bool
	Min, Max datum.D
}

// SegmentStats aggregates sealed-segment metadata into table-level shape:
// the coarse statistics the optimizer falls back on when ANALYZE-built stats
// are missing or stale. ok is false when the table has no sealed segments.
// Rows counts sealed rows only; TotalRows includes the unsealed tail.
func (t *Table) SegmentStats() (rows, totalRows, pages int, cols []SegColStats, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.seg == nil || len(t.seg.segs) == 0 {
		return 0, 0, 0, nil, false
	}
	ncols := len(t.Def.Cols)
	cols = make([]SegColStats, ncols)
	sketches := make([][sketchBytes]byte, ncols)
	for si := range t.seg.segs {
		sm := &t.seg.segs[si]
		for ci := 0; ci < ncols && ci < len(sm.cols); ci++ {
			cm := &sm.cols[ci]
			cs := &cols[ci]
			cs.NullCount += cm.nullCount
			unionSketch(&sketches[ci], cm.sketch)
			if cm.hasZone {
				if !cs.HasZone {
					cs.HasZone, cs.Min, cs.Max = true, cm.min, cm.max
				} else {
					if datum.Compare(cm.min, cs.Min) < 0 {
						cs.Min = cm.min
					}
					if datum.Compare(cm.max, cs.Max) > 0 {
						cs.Max = cm.max
					}
				}
			}
		}
	}
	rows = t.seg.sealedRows
	for ci := range cols {
		cols[ci].Distinct = sketchDistinct(sketches[ci], float64(rows-cols[ci].NullCount))
	}
	totalRows = t.rowCountLocked()
	total := t.seg.diskBytes + int64(t.bytes)
	pages = int((total + PageSize - 1) / PageSize)
	return rows, totalRows, pages, cols, true
}

// IndexData is a built (sorted) secondary index: key columns plus row ids,
// ordered by key then row id. Lookups binary-search, modeling a B-tree.
type IndexData struct {
	Def     *catalog.Index
	keys    []datum.Row // projected key columns
	rowIDs  []int
	KeyCols []int
}

// Index returns (building if necessary) the named index's data. Disk-backed
// tables materialize their rows for the build; the built index is cached
// until the next write.
func (t *Table) Index(name string) (*IndexData, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := strings.ToLower(name)
	if ix, ok := t.indexes[k]; ok {
		return ix, nil
	}
	var def *catalog.Index
	for _, ix := range t.Def.Indexes {
		if strings.EqualFold(ix.Name, name) {
			def = ix
			break
		}
	}
	if def == nil {
		return nil, fmt.Errorf("storage: table %s has no index %q", t.Def.Name, name)
	}
	rows := t.rows
	if t.seg != nil {
		var err error
		rows, err = t.rowsRangeLocked(nil, 0, t.rowCountLocked())
		if err != nil {
			return nil, err
		}
	}
	ix := &IndexData{Def: def, KeyCols: def.Cols}
	ix.keys = make([]datum.Row, len(rows))
	ix.rowIDs = make([]int, len(rows))
	for i, r := range rows {
		key := make(datum.Row, len(def.Cols))
		for j, ord := range def.Cols {
			key[j] = r[ord]
		}
		ix.keys[i] = key
		ix.rowIDs[i] = i
	}
	order := make([]int, len(rows))
	for i := range order {
		order[i] = i
	}
	spec := fullSpec(len(def.Cols))
	sort.SliceStable(order, func(a, b int) bool {
		c := datum.CompareRows(ix.keys[order[a]], ix.keys[order[b]], spec)
		if c != 0 {
			return c < 0
		}
		return ix.rowIDs[order[a]] < ix.rowIDs[order[b]]
	})
	sortedKeys := make([]datum.Row, len(order))
	sortedIDs := make([]int, len(order))
	for i, o := range order {
		sortedKeys[i] = ix.keys[o]
		sortedIDs[i] = ix.rowIDs[o]
	}
	ix.keys, ix.rowIDs = sortedKeys, sortedIDs
	t.indexes[k] = ix
	return ix, nil
}

func fullSpec(n int) []datum.SortSpec {
	spec := make([]datum.SortSpec, n)
	for i := range spec {
		spec[i] = datum.SortSpec{Col: i}
	}
	return spec
}

// Len returns the number of index entries.
func (ix *IndexData) Len() int { return len(ix.keys) }

// Entry returns the i-th (key, rowID) pair in index order.
func (ix *IndexData) Entry(i int) (datum.Row, int) { return ix.keys[i], ix.rowIDs[i] }

// SeekEq returns the row ids whose leading key columns equal the prefix key.
func (ix *IndexData) SeekEq(prefix datum.Row) []int {
	lo := ix.lowerBound(prefix, true)
	hi := ix.lowerBound(prefix, false)
	out := make([]int, 0, hi-lo)
	out = append(out, ix.rowIDs[lo:hi]...)
	return out
}

// lowerBound returns the first index position whose key prefix is >= prefix
// (incl=true) or > prefix (incl=false).
func (ix *IndexData) lowerBound(prefix datum.Row, incl bool) int {
	spec := fullSpec(len(prefix))
	return sort.Search(len(ix.keys), func(i int) bool {
		c := datum.CompareRows(ix.keys[i][:len(prefix)], prefix, spec)
		if incl {
			return c >= 0
		}
		return c > 0
	})
}

// SeekRange returns the row ids whose leading key column lies in the range
// [lo, hi] with the given inclusivity; NULL bounds mean unbounded. NULL keys
// (which sort first) are excluded, matching SQL predicate semantics.
func (ix *IndexData) SeekRange(lo datum.D, loIncl bool, hi datum.D, hiIncl bool) []int {
	var out []int
	for i, k := range ix.keys {
		v := k[0]
		if v.IsNull() {
			continue
		}
		if !lo.IsNull() {
			c := datum.Compare(v, lo)
			if c < 0 || (c == 0 && !loIncl) {
				continue
			}
		}
		if !hi.IsNull() {
			c := datum.Compare(v, hi)
			if c > 0 || (c == 0 && !hiIncl) {
				break
			}
		}
		out = append(out, ix.rowIDs[i])
	}
	return out
}

// StoreConfig selects the storage mode and its knobs.
type StoreConfig struct {
	// Dir, when non-empty, makes tables disk-backed: each table seals its
	// rows into columnar segment files under Dir/<table>/. Empty keeps the
	// historical in-memory behavior.
	Dir string
	// SegmentRows is the sealed-segment row count (DefaultSegmentRows when
	// zero). Should stay a multiple of the executor's morsel size.
	SegmentRows int
	// CacheBytes bounds the store-wide decoded-column LRU cache
	// (defaultCacheBytes when zero).
	CacheBytes int64
	// Faults, when non-nil, injects errors into the segment write path
	// (the "segment.create"/"segment.write" encode streams plus the
	// durability sites "segment.writefile", "segment.fsync",
	// "segment.rename", "dir.fsync", "manifest.append", "manifest.fsync").
	// The read path takes its injector per-scan via ScanCtx instead.
	Faults *faultfs.Injector
	// IORetries is how many times a transient I/O fault (one matching
	// faultfs.ErrTransient) is retried before propagating. 0 disables
	// retries; permanent faults always propagate immediately.
	IORetries int
	// IORetryBackoff is the sleep before the first retry, doubling each
	// further attempt.
	IORetryBackoff time.Duration
	// DisableChecksums skips CRC verification on block decode — the
	// benchmark A/B arm for measuring checksum overhead, and an escape
	// hatch for salvage reads. Writes still record checksums.
	DisableChecksums bool
	// DisableCompression forces every column block to the plain layout at
	// seal time — the benchmark A/B arm for measuring what dictionary and
	// run-length encoding buy. Reads are unaffected: compressed blocks
	// written earlier still decode.
	DisableCompression bool
}

// Store maps table names to stored tables.
type Store struct {
	mu       sync.RWMutex
	tables   map[string]*Table
	cfg      StoreConfig
	cache    *colCache
	recovery []*RecoveryReport
}

// retryIO runs f, retrying transient faults (faultfs.ErrTransient) up to
// cfg.IORetries times with exponential backoff. Permanent errors propagate
// on first occurrence.
func (s *Store) retryIO(f func() error) error {
	backoff := s.cfg.IORetryBackoff
	for attempt := 0; ; attempt++ {
		err := f()
		if err == nil || !errors.Is(err, faultfs.ErrTransient) || attempt >= s.cfg.IORetries {
			return err
		}
		if backoff > 0 {
			time.Sleep(backoff << attempt)
		}
	}
}

// NewStore returns an empty in-memory store.
func NewStore() *Store { return NewStoreWith(StoreConfig{}) }

// NewStoreWith returns an empty store in the mode cfg selects.
func NewStoreWith(cfg StoreConfig) *Store {
	s := &Store{tables: make(map[string]*Table), cfg: cfg}
	if cfg.Dir != "" {
		if s.cfg.SegmentRows <= 0 {
			s.cfg.SegmentRows = DefaultSegmentRows
		}
		if s.cfg.CacheBytes <= 0 {
			s.cfg.CacheBytes = defaultCacheBytes
		}
		s.cache = newColCache(s.cfg.CacheBytes)
	}
	return s
}

// DiskBacked reports whether tables seal rows into segment files.
func (s *Store) DiskBacked() bool { return s.cfg.Dir != "" }

// CreateTable allocates storage for a catalog table. In disk mode, the
// table's directory is *recovered*, not merely listed: the manifest is
// replayed (truncating any torn tail), listed segments are verified and
// adopted — corrupt ones softly, preserving the row-id space — and files
// the manifest never published are quarantined into lost/. Restarting an
// engine over the same StorageDir therefore sees exactly the state of the
// last committed operation. The findings land in Store.Recovery().
func (s *Store) CreateTable(def *catalog.Table) (*Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := strings.ToLower(def.Name)
	if _, ok := s.tables[k]; ok {
		return nil, fmt.Errorf("storage: table %q already exists", def.Name)
	}
	t := NewTable(def)
	t.store = s
	if s.cfg.Dir != "" {
		dir := filepath.Join(s.cfg.Dir, k)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("storage: creating table directory: %w", err)
		}
		t.seg = &segTable{dir: dir, segRows: s.cfg.SegmentRows}
		rep, err := t.recoverLocked()
		if err != nil {
			return nil, err
		}
		s.recovery = append(s.recovery, rep)
	}
	s.tables[k] = t
	return t, nil
}

// FlushAll seals every table's unsealed tail (no-op for in-memory stores).
func (s *Store) FlushAll() error {
	s.mu.RLock()
	tables := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		tables = append(tables, t)
	}
	s.mu.RUnlock()
	for _, t := range tables {
		if err := t.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Table looks up stored data by table name.
func (s *Store) Table(name string) (*Table, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}
