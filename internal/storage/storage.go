// Package storage is the in-memory storage engine: heap tables with page
// accounting and ordered (B-tree-like) secondary indexes. Real disk I/O is
// replaced by modeled page counts (see DESIGN.md §4); the executor reports
// simulated page touches so measured and estimated costs are comparable.
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/datum"
)

// PageSize is the modeled page size in bytes.
const PageSize = 8192

// Table is the stored data for one catalog table.
type Table struct {
	Def  *catalog.Table
	rows []datum.Row
	// bytes is the accumulated modeled width of all rows.
	bytes int
	// indexes are built lazily and invalidated by writes.
	indexes map[string]*IndexData
	mu      sync.RWMutex
}

// NewTable creates empty storage for a catalog table.
func NewTable(def *catalog.Table) *Table {
	return &Table{Def: def, indexes: make(map[string]*IndexData)}
}

// Insert appends a row. The row must match the table arity and column kinds
// (NULLs allowed unless the column is NOT NULL).
func (t *Table) Insert(row datum.Row) error {
	if len(row) != len(t.Def.Cols) {
		return fmt.Errorf("storage: table %s expects %d columns, got %d", t.Def.Name, len(t.Def.Cols), len(row))
	}
	for i, d := range row {
		col := t.Def.Cols[i]
		if d.IsNull() {
			if col.NotNull {
				return fmt.Errorf("storage: NULL in NOT NULL column %s.%s", t.Def.Name, col.Name)
			}
			continue
		}
		if d.Kind() != col.Kind && !(d.Kind().Numeric() && col.Kind.Numeric()) {
			return fmt.Errorf("storage: column %s.%s expects %s, got %s", t.Def.Name, col.Name, col.Kind, d.Kind())
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = append(t.rows, row.Clone())
	t.bytes += row.Size()
	t.indexes = make(map[string]*IndexData) // invalidate
	return nil
}

// InsertBatch inserts many rows, stopping at the first error.
func (t *Table) InsertBatch(rows []datum.Row) error {
	for _, r := range rows {
		if err := t.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// RowCount returns the number of stored rows.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// PageCount returns the modeled number of pages the heap occupies.
func (t *Table) PageCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.bytes == 0 {
		return 0
	}
	return (t.bytes + PageSize - 1) / PageSize
}

// Rows returns the stored rows. Callers must not mutate them.
func (t *Table) Rows() []datum.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// Row returns the row with the given row id.
func (t *Table) Row(id int) datum.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[id]
}

// FillColumnRange appends column ord of rows [lo, hi) to v — the
// batch-granular scan API of the vectorized execution path: one lock
// acquisition and one column fill per morsel instead of a row-at-a-time
// iterator. Values whose dynamic kind disagrees with v's kind (numeric
// coercion allows that) switch v to its boxed representation, so the fill
// never fails.
func (t *Table) FillColumnRange(ord, lo, hi int, v *datum.Vec) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.rows[lo:hi] {
		v.AppendD(r[ord])
	}
}

// FillColumnIDs appends column ord of the rows with the given ids to v, in
// id order — the gather form of the batch scan API used by index scans and
// late materialization of filtered scans.
func (t *Table) FillColumnIDs(ord int, ids []int, v *datum.Vec) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, id := range ids {
		v.AppendD(t.rows[id][ord])
	}
}

// SortBy physically reorders the heap by the given sort spec — used to
// realize a clustered index.
func (t *Table) SortBy(spec []datum.SortSpec) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sort.SliceStable(t.rows, func(i, j int) bool {
		return datum.CompareRows(t.rows[i], t.rows[j], spec) < 0
	})
	t.indexes = make(map[string]*IndexData)
}

// IndexData is a built (sorted) secondary index: key columns plus row ids,
// ordered by key then row id. Lookups binary-search, modeling a B-tree.
type IndexData struct {
	Def     *catalog.Index
	keys    []datum.Row // projected key columns
	rowIDs  []int
	KeyCols []int
}

// Index returns (building if necessary) the named index's data.
func (t *Table) Index(name string) (*IndexData, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := strings.ToLower(name)
	if ix, ok := t.indexes[k]; ok {
		return ix, nil
	}
	var def *catalog.Index
	for _, ix := range t.Def.Indexes {
		if strings.EqualFold(ix.Name, name) {
			def = ix
			break
		}
	}
	if def == nil {
		return nil, fmt.Errorf("storage: table %s has no index %q", t.Def.Name, name)
	}
	ix := &IndexData{Def: def, KeyCols: def.Cols}
	ix.keys = make([]datum.Row, len(t.rows))
	ix.rowIDs = make([]int, len(t.rows))
	for i, r := range t.rows {
		key := make(datum.Row, len(def.Cols))
		for j, ord := range def.Cols {
			key[j] = r[ord]
		}
		ix.keys[i] = key
		ix.rowIDs[i] = i
	}
	order := make([]int, len(t.rows))
	for i := range order {
		order[i] = i
	}
	spec := fullSpec(len(def.Cols))
	sort.SliceStable(order, func(a, b int) bool {
		c := datum.CompareRows(ix.keys[order[a]], ix.keys[order[b]], spec)
		if c != 0 {
			return c < 0
		}
		return ix.rowIDs[order[a]] < ix.rowIDs[order[b]]
	})
	sortedKeys := make([]datum.Row, len(order))
	sortedIDs := make([]int, len(order))
	for i, o := range order {
		sortedKeys[i] = ix.keys[o]
		sortedIDs[i] = ix.rowIDs[o]
	}
	ix.keys, ix.rowIDs = sortedKeys, sortedIDs
	t.indexes[k] = ix
	return ix, nil
}

func fullSpec(n int) []datum.SortSpec {
	spec := make([]datum.SortSpec, n)
	for i := range spec {
		spec[i] = datum.SortSpec{Col: i}
	}
	return spec
}

// Len returns the number of index entries.
func (ix *IndexData) Len() int { return len(ix.keys) }

// Entry returns the i-th (key, rowID) pair in index order.
func (ix *IndexData) Entry(i int) (datum.Row, int) { return ix.keys[i], ix.rowIDs[i] }

// SeekEq returns the row ids whose leading key columns equal the prefix key.
func (ix *IndexData) SeekEq(prefix datum.Row) []int {
	lo := ix.lowerBound(prefix, true)
	hi := ix.lowerBound(prefix, false)
	out := make([]int, 0, hi-lo)
	out = append(out, ix.rowIDs[lo:hi]...)
	return out
}

// lowerBound returns the first index position whose key prefix is >= prefix
// (incl=true) or > prefix (incl=false).
func (ix *IndexData) lowerBound(prefix datum.Row, incl bool) int {
	spec := fullSpec(len(prefix))
	return sort.Search(len(ix.keys), func(i int) bool {
		c := datum.CompareRows(ix.keys[i][:len(prefix)], prefix, spec)
		if incl {
			return c >= 0
		}
		return c > 0
	})
}

// SeekRange returns the row ids whose leading key column lies in the range
// [lo, hi] with the given inclusivity; NULL bounds mean unbounded. NULL keys
// (which sort first) are excluded, matching SQL predicate semantics.
func (ix *IndexData) SeekRange(lo datum.D, loIncl bool, hi datum.D, hiIncl bool) []int {
	var out []int
	for i, k := range ix.keys {
		v := k[0]
		if v.IsNull() {
			continue
		}
		if !lo.IsNull() {
			c := datum.Compare(v, lo)
			if c < 0 || (c == 0 && !loIncl) {
				continue
			}
		}
		if !hi.IsNull() {
			c := datum.Compare(v, hi)
			if c > 0 || (c == 0 && !hiIncl) {
				break
			}
		}
		out = append(out, ix.rowIDs[i])
	}
	return out
}

// Store maps table names to stored tables.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]*Table)}
}

// CreateTable allocates storage for a catalog table.
func (s *Store) CreateTable(def *catalog.Table) (*Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := strings.ToLower(def.Name)
	if _, ok := s.tables[k]; ok {
		return nil, fmt.Errorf("storage: table %q already exists", def.Name)
	}
	t := NewTable(def)
	s.tables[k] = t
	return t, nil
}

// Table looks up stored data by table name.
func (s *Store) Table(name string) (*Table, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}
