package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/datum"
)

func testDef() *catalog.Table {
	return &catalog.Table{
		Name: "t",
		Cols: []catalog.Column{
			{Name: "a", Kind: datum.KindInt, NotNull: true},
			{Name: "b", Kind: datum.KindString},
		},
		Indexes: []*catalog.Index{
			{Name: "t_a", Cols: []int{0}},
			{Name: "t_ba", Cols: []int{1, 0}},
		},
	}
}

func mustRows(t *testing.T, tab *Table) []datum.Row {
	t.Helper()
	rows, err := tab.Rows(nil)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func mustRow(t *testing.T, tab *Table, id int) datum.Row {
	t.Helper()
	r, err := tab.Row(nil, id)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestInsertAndScan(t *testing.T) {
	tab := NewTable(testDef())
	rows := []datum.Row{
		{datum.NewInt(3), datum.NewString("c")},
		{datum.NewInt(1), datum.NewString("a")},
		{datum.NewInt(2), datum.Null},
	}
	if err := tab.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	if tab.RowCount() != 3 {
		t.Fatalf("RowCount = %d", tab.RowCount())
	}
	if mustRow(t, tab, 1)[0].Int() != 1 {
		t.Error("Row(1) wrong")
	}
	if tab.PageCount() != 1 {
		t.Errorf("PageCount = %d, want 1 for tiny table", tab.PageCount())
	}
}

func TestInsertValidation(t *testing.T) {
	tab := NewTable(testDef())
	if err := tab.Insert(datum.Row{datum.NewInt(1)}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := tab.Insert(datum.Row{datum.Null, datum.NewString("x")}); err == nil {
		t.Error("NULL in NOT NULL should fail")
	}
	if err := tab.Insert(datum.Row{datum.NewString("x"), datum.NewString("y")}); err == nil {
		t.Error("kind mismatch should fail")
	}
	// Numeric cross-kind is allowed.
	if err := tab.Insert(datum.Row{datum.NewFloat(1.0), datum.NewString("y")}); err != nil {
		t.Errorf("float into int column should be allowed: %v", err)
	}
}

func TestPageCountGrows(t *testing.T) {
	tab := NewTable(testDef())
	for i := 0; i < 5000; i++ {
		if err := tab.Insert(datum.Row{datum.NewInt(int64(i)), datum.NewString("some payload string")}); err != nil {
			t.Fatal(err)
		}
	}
	if tab.PageCount() < 2 {
		t.Errorf("PageCount = %d, want several pages", tab.PageCount())
	}
}

func TestIndexSeekEq(t *testing.T) {
	tab := NewTable(testDef())
	vals := []int64{5, 3, 5, 1, 5, 2}
	for i, v := range vals {
		if err := tab.Insert(datum.Row{datum.NewInt(v), datum.NewString(string(rune('a' + i)))}); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := tab.Index("T_A")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 6 {
		t.Fatalf("index len %d", ix.Len())
	}
	got := ix.SeekEq(datum.Row{datum.NewInt(5)})
	if len(got) != 3 {
		t.Fatalf("SeekEq(5) = %v, want 3 matches", got)
	}
	for _, id := range got {
		if mustRow(t, tab, id)[0].Int() != 5 {
			t.Errorf("row %d is not a 5", id)
		}
	}
	if got := ix.SeekEq(datum.Row{datum.NewInt(99)}); len(got) != 0 {
		t.Errorf("SeekEq(99) = %v, want empty", got)
	}
}

func TestIndexSeekRange(t *testing.T) {
	tab := NewTable(testDef())
	for _, v := range []int64{10, 20, 30, 40, 50} {
		if err := tab.Insert(datum.Row{datum.NewInt(v), datum.Null}); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := tab.Index("t_a")
	if err != nil {
		t.Fatal(err)
	}
	ids := ix.SeekRange(datum.NewInt(20), true, datum.NewInt(40), false)
	if len(ids) != 2 {
		t.Fatalf("SeekRange [20,40) = %d rows, want 2", len(ids))
	}
	ids = ix.SeekRange(datum.Null, false, datum.NewInt(20), true)
	if len(ids) != 2 {
		t.Fatalf("SeekRange (-inf,20] = %d rows, want 2", len(ids))
	}
	ids = ix.SeekRange(datum.NewInt(45), true, datum.Null, false)
	if len(ids) != 1 {
		t.Fatalf("SeekRange [45,inf) = %d rows, want 1", len(ids))
	}
}

func TestIndexSkipsNullKeysInRange(t *testing.T) {
	tab := NewTable(testDef())
	def2 := &catalog.Table{
		Name: "t2",
		Cols: []catalog.Column{{Name: "a", Kind: datum.KindInt}},
		Indexes: []*catalog.Index{
			{Name: "ix", Cols: []int{0}},
		},
	}
	tab = NewTable(def2)
	tab.Insert(datum.Row{datum.Null})
	tab.Insert(datum.Row{datum.NewInt(1)})
	ix, err := tab.Index("ix")
	if err != nil {
		t.Fatal(err)
	}
	if ids := ix.SeekRange(datum.Null, false, datum.Null, false); len(ids) != 1 {
		t.Errorf("unbounded range should skip NULL keys, got %d rows", len(ids))
	}
}

func TestIndexInvalidation(t *testing.T) {
	tab := NewTable(testDef())
	tab.Insert(datum.Row{datum.NewInt(1), datum.Null})
	ix1, _ := tab.Index("t_a")
	if ix1.Len() != 1 {
		t.Fatal("expected 1 entry")
	}
	tab.Insert(datum.Row{datum.NewInt(2), datum.Null})
	ix2, _ := tab.Index("t_a")
	if ix2.Len() != 2 {
		t.Error("index should rebuild after insert")
	}
}

func TestIndexMissing(t *testing.T) {
	tab := NewTable(testDef())
	if _, err := tab.Index("nope"); err == nil {
		t.Error("missing index should error")
	}
}

func TestMultiColumnIndex(t *testing.T) {
	tab := NewTable(testDef())
	tab.Insert(datum.Row{datum.NewInt(1), datum.NewString("x")})
	tab.Insert(datum.Row{datum.NewInt(2), datum.NewString("x")})
	tab.Insert(datum.Row{datum.NewInt(1), datum.NewString("y")})
	ix, err := tab.Index("t_ba")
	if err != nil {
		t.Fatal(err)
	}
	// Prefix seek on leading column only.
	ids := ix.SeekEq(datum.Row{datum.NewString("x")})
	if len(ids) != 2 {
		t.Fatalf("prefix SeekEq('x') = %d rows, want 2", len(ids))
	}
	// Full-key seek.
	ids = ix.SeekEq(datum.Row{datum.NewString("x"), datum.NewInt(2)})
	if len(ids) != 1 || mustRow(t, tab, ids[0])[0].Int() != 2 {
		t.Fatalf("full SeekEq = %v", ids)
	}
}

func TestSortBy(t *testing.T) {
	tab := NewTable(testDef())
	for _, v := range []int64{3, 1, 2} {
		tab.Insert(datum.Row{datum.NewInt(v), datum.Null})
	}
	if err := tab.SortBy([]datum.SortSpec{{Col: 0}}); err != nil {
		t.Fatal(err)
	}
	rows := mustRows(t, tab)
	for i := 1; i < len(rows); i++ {
		if rows[i-1][0].Int() > rows[i][0].Int() {
			t.Fatal("SortBy did not order heap")
		}
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	if _, err := s.CreateTable(testDef()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable(testDef()); err == nil {
		t.Error("duplicate create should fail")
	}
	if _, ok := s.Table("T"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := s.Table("missing"); ok {
		t.Error("missing table should not be found")
	}
}

// Property (testing/quick): index range seeks agree with a linear scan
// filter for every range.
func TestSeekRangeMatchesLinearQuick(t *testing.T) {
	def := &catalog.Table{
		Name: "q",
		Cols: []catalog.Column{{Name: "a", Kind: datum.KindInt}},
		Indexes: []*catalog.Index{
			{Name: "q_a", Cols: []int{0}},
		},
	}
	tab := NewTable(def)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 500; i++ {
		v := datum.NewInt(rng.Int63n(100))
		if rng.Intn(10) == 0 {
			v = datum.Null
		}
		if err := tab.Insert(datum.Row{v}); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := tab.Index("q_a")
	if err != nil {
		t.Fatal(err)
	}
	f := func(lo8, span8 uint8, loIncl, hiIncl, openLo, openHi bool) bool {
		lo := datum.NewInt(int64(lo8) % 110)
		hi := datum.NewInt(int64(lo8)%110 + int64(span8)%40)
		dlo, dhi := datum.D(lo), datum.D(hi)
		if openLo {
			dlo = datum.Null
		}
		if openHi {
			dhi = datum.Null
		}
		got := ix.SeekRange(dlo, loIncl, dhi, hiIncl)
		want := map[int]bool{}
		for id, r := range mustRows(t, tab) {
			v := r[0]
			if v.IsNull() {
				continue
			}
			if !dlo.IsNull() {
				c := datum.Compare(v, dlo)
				if c < 0 || (c == 0 && !loIncl) {
					continue
				}
			}
			if !dhi.IsNull() {
				c := datum.Compare(v, dhi)
				if c > 0 || (c == 0 && !hiIncl) {
					continue
				}
			}
			want[id] = true
		}
		if len(got) != len(want) {
			return false
		}
		for _, id := range got {
			if !want[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
