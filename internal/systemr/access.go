package systemr

import (
	"repro/internal/datum"
	"repro/internal/logical"
	"repro/internal/physical"
)

// ordToColID maps a base-table ordinal of the scan to its query column ID.
func (o *Optimizer) ordToColID(scan *logical.Scan, ord int) (logical.ColumnID, bool) {
	for _, id := range scan.Cols {
		if o.Est.Meta.Column(id).BaseOrd == ord {
			return id, true
		}
	}
	return 0, false
}

// scanOrds returns the base ordinals for the scan's output layout.
func (o *Optimizer) scanOrds(cols []logical.ColumnID) []int {
	out := make([]int, len(cols))
	for i, id := range cols {
		out[i] = o.Est.Meta.Column(id).BaseOrd
	}
	return out
}

// constEq returns the constant compared for equality with the column, if the
// predicate has the shape col = const, plus the parameter ordinal behind the
// constant (0 for a plain literal).
func constEq(p logical.Scalar, col logical.ColumnID) (datum.D, int, bool) {
	cmp, ok := p.(*logical.Cmp)
	if !ok || cmp.Op != logical.CmpEq {
		return datum.Null, 0, false
	}
	if c, ok := cmp.L.(*logical.Col); ok && c.ID == col {
		if k, ok := cmp.R.(*logical.Const); ok {
			return k.Val, k.Param, true
		}
	}
	if c, ok := cmp.R.(*logical.Col); ok && c.ID == col {
		if k, ok := cmp.L.(*logical.Const); ok {
			return k.Val, k.Param, true
		}
	}
	return datum.Null, 0, false
}

// rangeBound extracts a range bound on the column: (lo/hi, inclusive), with
// the parameter ordinals behind each bound (0 for plain literals).
func rangeBound(p logical.Scalar, col logical.ColumnID) (lo datum.D, loIncl bool, loParam int, hi datum.D, hiIncl bool, hiParam int, ok bool) {
	cmp, okc := p.(*logical.Cmp)
	if !okc {
		return
	}
	op := cmp.Op
	var k datum.D
	var kParam int
	if c, okc := cmp.L.(*logical.Col); okc && c.ID == col {
		if kk, okc := cmp.R.(*logical.Const); okc {
			k, kParam = kk.Val, kk.Param
		} else {
			return
		}
	} else if c, okc := cmp.R.(*logical.Col); okc && c.ID == col {
		if kk, okc := cmp.L.(*logical.Const); okc {
			k, kParam = kk.Val, kk.Param
			op = op.Commute()
		} else {
			return
		}
	} else {
		return
	}
	switch op {
	case logical.CmpLt:
		return datum.Null, false, 0, k, false, kParam, true
	case logical.CmpLe:
		return datum.Null, false, 0, k, true, kParam, true
	case logical.CmpGt:
		return k, false, kParam, datum.Null, false, 0, true
	case logical.CmpGe:
		return k, true, kParam, datum.Null, false, 0, true
	}
	return
}

// hasParamOrd reports whether any collected ordinal is a real parameter.
func hasParamOrd(ords []int) bool {
	for _, o := range ords {
		if o != 0 {
			return true
		}
	}
	return false
}

// accessPaths generates the candidate access paths for one base-table
// occurrence under the given (already pushed-down) filters: a sequential
// scan, qualified index scans, and full index scans that provide order.
func (o *Optimizer) accessPaths(scan *logical.Scan, filters []logical.Scalar) []physical.Plan {
	// Page count reflects zone-map segment elimination under the pushed-down
	// filters: pruned segments are never read, so the seq-scan candidate is
	// charged only the pages a real scan would touch.
	tableRows, tablePages := o.Est.TableShape(scan, filters)
	// Output rows are a logical property — identical for all candidates.
	var outRel logical.RelExpr = scan
	if len(filters) > 0 {
		outRel = &logical.Select{Input: scan, Filters: filters}
	}
	outRows := o.Est.Stats(outRel).Rows
	ords := o.scanOrds(scan.Cols)

	var cands []physical.Plan
	// 1. Sequential scan.
	cands = append(cands, &physical.TableScan{
		Props:   physical.Props{Rows: outRows, Cost: o.Model.SeqScan(tablePages, tableRows, len(filters))},
		Table:   scan.Table,
		Binding: scan.Binding,
		Cols:    scan.Cols,
		ColOrds: ords,
		Filter:  filters,
	})

	scanStats := o.Est.Stats(scan)
	for _, ix := range scan.Table.Indexes {
		// Greedily match an equality prefix, then one range column.
		var eqKey datum.Row
		var eqParams []int
		matched := map[logical.Scalar]bool{}
		var lo, hi datum.D
		var loIncl, hiIncl bool
		var loParam, hiParam int
		sel := 1.0
		for depth, ord := range ix.Cols {
			col, ok := o.ordToColID(scan, ord)
			if !ok {
				break
			}
			var eqConst datum.D
			eqParam := 0
			eqFound := false
			for _, f := range filters {
				if matched[f] {
					continue
				}
				if v, prm, ok := constEq(f, col); ok {
					eqConst, eqParam, eqFound = v, prm, true
					matched[f] = true
					sel *= o.Est.Selectivity(f, scanStats)
					break
				}
			}
			if eqFound {
				eqKey = append(eqKey, eqConst)
				eqParams = append(eqParams, eqParam)
				continue
			}
			// No equality at this depth: try range bounds, then stop.
			for _, f := range filters {
				if matched[f] {
					continue
				}
				l, li, lp, h, hi2, hp, ok := rangeBound(f, col)
				if !ok {
					continue
				}
				matched[f] = true
				sel *= o.Est.Selectivity(f, scanStats)
				if !l.IsNull() {
					lo, loIncl, loParam = l, li, lp
				}
				if !h.IsNull() {
					hi, hiIncl, hiParam = h, hi2, hp
				}
			}
			_ = depth
			break
		}
		if !hasParamOrd(eqParams) {
			eqParams = nil // keep plans without parameters byte-identical to before
		}
		qualified := len(eqKey) > 0 || !lo.IsNull() || !hi.IsNull()
		if !qualified && !o.Opts.InterestingOrders {
			continue // full index scan only pays off for its ordering
		}
		matchRows := tableRows * sel
		var residual []logical.Scalar
		for _, f := range filters {
			if !matched[f] {
				residual = append(residual, f)
			}
		}
		cands = append(cands, &physical.IndexScan{
			Props: physical.Props{
				Rows: outRows,
				Cost: o.Model.IndexScan(matchRows, tableRows, tablePages, ix.Clustered) +
					o.Model.Filter(matchRows, len(residual)),
			},
			Table:   scan.Table,
			Index:   ix,
			Binding: scan.Binding,
			Cols:    scan.Cols,
			ColOrds: ords,
			EqKey:   eqKey, EqKeyParams: eqParams,
			Lo: lo, LoIncl: loIncl, LoParam: loParam,
			Hi: hi, HiIncl: hiIncl, HiParam: hiParam,
			Filter: residual,
		})
	}
	o.Metrics.PlansCosted += len(cands)
	return cands
}

// leafPlans returns candidate plans for a DP leaf. Scan-shaped leaves get
// access-path alternatives; anything else is optimized recursively into a
// single candidate.
func (o *Optimizer) leafPlans(leaf logical.RelExpr, interesting logical.ColSet) ([]physical.Plan, error) {
	switch t := leaf.(type) {
	case *logical.Scan:
		return o.accessPaths(t, nil), nil
	case *logical.Select:
		if scan, ok := t.Input.(*logical.Scan); ok {
			return o.accessPaths(scan, t.Filters), nil
		}
	}
	p, err := o.optimize(leaf, interesting)
	if err != nil {
		return nil, err
	}
	return []physical.Plan{p}, nil
}
