package systemr

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/logical"
	"repro/internal/physical"
)

// block holds the working state of one join-block optimization.
type block struct {
	opt    *Optimizer
	leaves []logical.RelExpr
	graph  *logical.QueryGraph
	// interesting is the set of columns whose orderings are worth keeping.
	interesting logical.ColSet
	// cardMemo caches subset cardinalities (a logical property shared by
	// every plan for the subset).
	cardMemo map[uint64]float64
	// relMemo caches the canonical logical expression per subset.
	relMemo map[uint64]logical.RelExpr
}

// optimizeBlock runs DP join enumeration over an inner-join block.
func (o *Optimizer) optimizeBlock(root logical.RelExpr, interesting logical.ColSet) (physical.Plan, error) {
	leaves, preds, ok := logical.ExtractJoinBlock(root)
	if !ok {
		return nil, fmt.Errorf("systemr: not a join block")
	}
	g := logical.BuildQueryGraph(leaves, preds)
	b := &block{
		opt:         o,
		leaves:      leaves,
		graph:       g,
		interesting: interesting.Copy(),
		cardMemo:    map[uint64]float64{},
		relMemo:     map[uint64]logical.RelExpr{},
	}
	// Join columns are interesting orders (§3).
	for _, e := range g.Edges {
		for _, p := range e.Preds {
			if l, r, ok := equiCols(p); ok {
				b.interesting.Add(l)
				b.interesting.Add(r)
			}
		}
	}
	n := len(leaves)
	// Predicates with no column footprint inside the block (constants,
	// uncorrelated subqueries) apply once, above the join.
	var floating []logical.Scalar
	var anchored []logical.Scalar
	blockCols := b.subsetCols(uint64(1)<<uint(n) - 1)
	for _, p := range g.Complex {
		if logical.ScalarCols(p).Intersect(blockCols).Empty() {
			floating = append(floating, p)
		} else {
			anchored = append(anchored, p)
		}
	}
	g.Complex = anchored

	var plan physical.Plan
	var err error
	switch {
	case n == 1:
		var plans []physical.Plan
		plans, err = b.leafCandidates(0)
		if err == nil {
			plan = cheapest(plans)
		}
	case n > 63:
		return nil, fmt.Errorf("systemr: %d relations exceed the enumerable maximum", n)
	default:
		plan, err = b.orderJoins(n)
	}
	if err != nil {
		return nil, err
	}
	if len(floating) > 0 {
		plan = o.addFilter(plan, floating)
	}
	return plan, nil
}

// orderJoins picks the enumeration tier for an n-relation block (n >= 2):
// greedy beyond MaxRelations (the classical overflow fallback), greedy for
// blocks at or below GreedyThreshold or whose greedy-ordered plan already
// costs no more than GreedyCostThreshold (the adaptive fast-path — planning
// time traded against join-order quality on statements too cheap to deserve
// DP), and full DP enumeration otherwise.
func (b *block) orderJoins(n int) (physical.Plan, error) {
	o := b.opt
	switch {
	case n > o.Opts.MaxRelations:
		o.noteTier(TierGreedyFallback)
		return b.greedy()
	case o.Opts.GreedyThreshold > 0 && n <= o.Opts.GreedyThreshold:
		o.noteTier(TierGreedy)
		return b.greedy()
	case o.Opts.GreedyCostThreshold > 0:
		if gp, err := b.greedy(); err == nil {
			if _, c := gp.Estimate(); c <= o.Opts.GreedyCostThreshold {
				o.noteTier(TierGreedy)
				return gp, nil
			}
		}
		// The greedy plan was too costly (or greedy failed): this block is
		// expensive enough that DP's better join order pays for itself.
		o.noteTier(TierDP)
		return b.dp()
	}
	o.noteTier(TierDP)
	return b.dp()
}

// equiCols extracts (leftCol, rightCol) from an equality between two columns.
func equiCols(p logical.Scalar) (logical.ColumnID, logical.ColumnID, bool) {
	cmp, ok := p.(*logical.Cmp)
	if !ok || cmp.Op != logical.CmpEq {
		return 0, 0, false
	}
	l, lok := cmp.L.(*logical.Col)
	r, rok := cmp.R.(*logical.Col)
	if !lok || !rok {
		return 0, 0, false
	}
	return l.ID, r.ID, true
}

// leafCandidates generates access paths for leaf i with its local predicates.
func (b *block) leafCandidates(i int) ([]physical.Plan, error) {
	leaf := b.leaves[i]
	local := b.graph.Local[i]
	if scan, ok := leaf.(*logical.Scan); ok {
		return b.opt.accessPaths(scan, local), nil
	}
	plans, err := b.opt.leafPlans(leaf, b.interesting)
	if err != nil {
		return nil, err
	}
	if len(local) > 0 {
		for j, p := range plans {
			plans[j] = b.opt.addFilter(p, local)
		}
	}
	return plans, nil
}

// subsetRel returns the canonical logical expression for a subset: leaves
// joined in index order with every applicable predicate.
func (b *block) subsetRel(mask uint64) logical.RelExpr {
	if e, ok := b.relMemo[mask]; ok {
		return e
	}
	// Build a left-deep join in index order, attaching each predicate at the
	// first join where both of its sides are available — the estimator then
	// sees accurate per-step selectivities instead of a cross product with
	// a top filter.
	var rel logical.RelExpr
	var acc uint64
	for i := 0; i < len(b.leaves); i++ {
		bit := uint64(1) << uint(i)
		if mask&bit == 0 {
			continue
		}
		leaf := b.leaves[i]
		if len(b.graph.Local[i]) > 0 {
			leaf = &logical.Select{Input: leaf, Filters: b.graph.Local[i]}
		}
		if rel == nil {
			rel = leaf
		} else {
			rel = &logical.Join{Kind: logical.InnerJoin, Left: rel, Right: leaf, On: b.joinPreds(acc, bit)}
		}
		acc |= bit
	}
	b.relMemo[mask] = rel
	return rel
}

func (b *block) subsetCols(mask uint64) logical.ColSet {
	var cols logical.ColSet
	for i := range b.leaves {
		if mask&(1<<uint(i)) != 0 {
			cols = cols.Union(b.graph.NodeCols[i])
		}
	}
	return cols
}

// card returns the estimated cardinality of a subset's join result.
func (b *block) card(mask uint64) float64 {
	if c, ok := b.cardMemo[mask]; ok {
		return c
	}
	c := b.opt.Est.Stats(b.subsetRel(mask)).Rows
	b.cardMemo[mask] = c
	return c
}

// members lists the leaf indexes in a mask.
func members(mask uint64) []int {
	var out []int
	for mask != 0 {
		i := bits.TrailingZeros64(mask)
		out = append(out, i)
		mask &^= 1 << uint(i)
	}
	return out
}

// entryKey derives the interesting-order key of a plan: the longest prefix
// of its output ordering consisting of interesting columns. Plans compare
// only within the same key (§3).
func (b *block) entryKey(p physical.Plan) string {
	if !b.opt.Opts.InterestingOrders {
		return ""
	}
	var kept logical.Ordering
	for _, s := range p.Ordering() {
		if !b.interesting.Contains(s.Col) {
			break
		}
		kept = append(kept, s)
	}
	return kept.Key()
}

// dpTable maps subset mask → interesting-order key → best plan.
type dpTable map[uint64]map[string]physical.Plan

func (b *block) insert(t dpTable, mask uint64, p physical.Plan) {
	key := b.entryKey(p)
	m, ok := t[mask]
	if !ok {
		m = map[string]physical.Plan{}
		t[mask] = m
	}
	_, newCost := p.Estimate()
	if cur, ok := m[key]; ok {
		if _, c := cur.Estimate(); c <= newCost {
			return
		}
	}
	m[key] = p
	// Drop entries dominated by a cheaper plan with a stronger-or-equal
	// key is unnecessary here: keys partition plans; the "" key holds the
	// global cheapest unordered plan.
}

// dp runs the bottom-up enumeration.
func (b *block) dp() (physical.Plan, error) {
	n := len(b.leaves)
	table := dpTable{}
	for i := 0; i < n; i++ {
		cands, err := b.leafCandidates(i)
		if err != nil {
			return nil, err
		}
		for _, p := range cands {
			b.insert(table, 1<<uint(i), p)
		}
		b.opt.Metrics.SubsetsVisited++
	}

	full := uint64(1)<<uint(n) - 1
	// Enumerate subsets in increasing popcount order.
	masks := make([]uint64, 0, 1<<uint(n))
	for m := uint64(1); m <= full; m++ {
		if bits.OnesCount64(m) >= 2 {
			masks = append(masks, m)
		}
	}
	sort.Slice(masks, func(i, j int) bool {
		pi, pj := bits.OnesCount64(masks[i]), bits.OnesCount64(masks[j])
		if pi != pj {
			return pi < pj
		}
		return masks[i] < masks[j]
	})

	// System R defers Cartesian products: when the full query graph is
	// connected, no cross join is ever required, so pred-less splits are
	// skipped entirely unless the knob enables them.
	allMembers := members(full)
	fullConnected := b.graph.Connected(allMembers)
	for _, mask := range masks {
		b.opt.Metrics.SubsetsVisited++
		splits := b.splits(mask)
		for _, sp := range splits {
			left, right := sp[0], sp[1]
			lp, lok := table[left]
			rp, rok := table[right]
			if !lok || !rok {
				continue
			}
			preds := b.joinPreds(left, right)
			if len(preds) == 0 && !b.opt.Opts.CartesianProducts && fullConnected {
				continue
			}
			rows := b.card(mask)
			rightLeaf := b.rightLeafLogical(right)
			var leftPlans, rightPlans []physical.Plan
			for _, p := range lp {
				leftPlans = append(leftPlans, p)
			}
			for _, p := range rp {
				rightPlans = append(rightPlans, p)
			}
			cands := b.opt.joinCandidates(logical.InnerJoin, leftPlans, rightPlans, rightLeaf, preds, rows)
			for _, p := range cands {
				b.insert(table, mask, p)
			}
		}
	}
	final, ok := table[full]
	if !ok || len(final) == 0 {
		return nil, fmt.Errorf("systemr: DP found no plan (disconnected graph without Cartesian products?)")
	}
	// Final selection: when the query requires an order the block can
	// provide, compare each retained plan's cost plus the sort it would
	// still need — the payoff for keeping interesting-order entries.
	blockCols := b.subsetCols(full)
	required := b.opt.requiredOrder
	for _, spec := range required {
		if !blockCols.Contains(spec.Col) {
			required = nil
			break
		}
	}
	var best physical.Plan
	bestCost := math.Inf(1)
	for _, p := range final {
		_, c := p.Estimate()
		if len(required) > 0 && !required.SatisfiedBy(p.Ordering()) {
			rows, _ := p.Estimate()
			c += b.opt.Model.Sort(rows)
		}
		if c < bestCost {
			best, bestCost = p, c
		}
	}
	for _, m := range table {
		b.opt.Metrics.EntriesKept += len(m)
	}
	return best, nil
}

// splits enumerates the (left, right) partitions of a mask: linear mode
// extends a (k-1)-subset by one relation; bushy mode tries every partition.
func (b *block) splits(mask uint64) [][2]uint64 {
	var out [][2]uint64
	if b.opt.Opts.Bushy {
		// Every proper sub-partition (left gets the lowest set bit to avoid
		// mirrored duplicates; both orders are generated for the asymmetric
		// join algorithms).
		for sub := (mask - 1) & mask; sub != 0; sub = (sub - 1) & mask {
			other := mask &^ sub
			if other == 0 {
				continue
			}
			out = append(out, [2]uint64{sub, other})
		}
		return out
	}
	for _, i := range members(mask) {
		bit := uint64(1) << uint(i)
		rest := mask &^ bit
		if rest != 0 {
			out = append(out, [2]uint64{rest, bit})
		}
	}
	return out
}

// joinPreds returns the edge predicates connecting two disjoint masks plus
// complex predicates that first become applicable at their union.
func (b *block) joinPreds(left, right uint64) []logical.Scalar {
	lm, rm := members(left), members(right)
	preds := b.graph.EdgesBetween(lm, rm)
	union := b.subsetCols(left | right)
	lcols := b.subsetCols(left)
	rcols := b.subsetCols(right)
	for _, p := range b.graph.Complex {
		cols := logical.ScalarCols(p)
		if cols.SubsetOf(union) && !cols.SubsetOf(lcols) && !cols.SubsetOf(rcols) {
			preds = append(preds, p)
		}
	}
	return preds
}

// rightLeafLogical returns the logical leaf when the right side is a single
// relation (enabling index nested-loop joins), else nil.
func (b *block) rightLeafLogical(right uint64) logical.RelExpr {
	if bits.OnesCount64(right) != 1 {
		return nil
	}
	i := bits.TrailingZeros64(right)
	leaf := b.leaves[i]
	if len(b.graph.Local[i]) > 0 {
		return &logical.Select{Input: leaf, Filters: b.graph.Local[i]}
	}
	return leaf
}

// greedy joins the cheapest pair repeatedly — the fallback beyond
// MaxRelations.
func (b *block) greedy() (physical.Plan, error) {
	type part struct {
		mask uint64
		plan physical.Plan
	}
	var parts []part
	for i := range b.leaves {
		cands, err := b.leafCandidates(i)
		if err != nil {
			return nil, err
		}
		parts = append(parts, part{mask: 1 << uint(i), plan: cheapest(cands)})
	}
	for len(parts) > 1 {
		bestI, bestJ := -1, -1
		var bestPlan physical.Plan
		bestCost := math.Inf(1)
		for i := 0; i < len(parts); i++ {
			for j := 0; j < len(parts); j++ {
				if i == j {
					continue
				}
				preds := b.joinPreds(parts[i].mask, parts[j].mask)
				if len(preds) == 0 && !b.opt.Opts.CartesianProducts && len(parts) > 2 {
					continue
				}
				mask := parts[i].mask | parts[j].mask
				rows := b.card(mask)
				cands := b.opt.joinCandidates(logical.InnerJoin,
					[]physical.Plan{parts[i].plan}, []physical.Plan{parts[j].plan},
					b.rightLeafLogical(parts[j].mask), preds, rows)
				if len(cands) == 0 {
					continue
				}
				p := cheapest(cands)
				if _, c := p.Estimate(); c < bestCost {
					bestI, bestJ, bestPlan, bestCost = i, j, p, c
				}
			}
		}
		if bestI < 0 {
			// Forced Cartesian product.
			for i := 0; i < len(parts); i++ {
				for j := 0; j < len(parts); j++ {
					if i == j {
						continue
					}
					mask := parts[i].mask | parts[j].mask
					rows := b.card(mask)
					cands := b.opt.joinCandidates(logical.InnerJoin,
						[]physical.Plan{parts[i].plan}, []physical.Plan{parts[j].plan},
						b.rightLeafLogical(parts[j].mask), nil, rows)
					p := cheapest(cands)
					if _, c := p.Estimate(); c < bestCost {
						bestI, bestJ, bestPlan, bestCost = i, j, p, c
					}
				}
			}
		}
		if bestI < 0 {
			return nil, fmt.Errorf("systemr: greedy failed to combine partitions")
		}
		merged := part{mask: parts[bestI].mask | parts[bestJ].mask, plan: bestPlan}
		var next []part
		for k, p := range parts {
			if k != bestI && k != bestJ {
				next = append(next, p)
			}
		}
		parts = append(next, merged)
	}
	return parts[0].plan, nil
}
