package systemr

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

// tierFixture is a small analyzed Emp/Dept database shared by the tier tests.
func tierFixture(t *testing.T) *workload.DB {
	t.Helper()
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 1200, Depts: 60, Seed: 3})
	db.Analyze(stats.AnalyzeOptions{})
	return db
}

const threeWay = `SELECT e.name, d.loc, m.name FROM Emp e, Dept d, Emp m
	WHERE e.did = d.did AND m.eid = e.eid AND d.budget > 100`

func TestTierTrivialForSingleTable(t *testing.T) {
	db := tierFixture(t)
	q := buildQuery(t, db, "SELECT name FROM Emp WHERE sal > 5000")
	o := optimizer(q, DefaultOptions())
	if _, err := o.Optimize(q); err != nil {
		t.Fatal(err)
	}
	if o.Tier != TierTrivial {
		t.Errorf("single-table tier = %q, want %q", o.Tier, TierTrivial)
	}
}

func TestTierDPByDefault(t *testing.T) {
	db := tierFixture(t)
	q := buildQuery(t, db, threeWay)
	o := optimizer(q, DefaultOptions())
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if o.Tier != TierDP {
		t.Errorf("default join tier = %q, want %q", o.Tier, TierDP)
	}
	verifyPlan(t, db, q, plan)
}

func TestTierGreedyUnderThreshold(t *testing.T) {
	db := tierFixture(t)
	opts := DefaultOptions()
	opts.GreedyThreshold = 8
	q := buildQuery(t, db, threeWay)
	o := optimizer(q, opts)
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if o.Tier != TierGreedy {
		t.Errorf("tier = %q, want %q for a 3-relation block under threshold 8", o.Tier, TierGreedy)
	}
	// The fast path changes join order at most — never results.
	verifyPlan(t, db, q, plan)

	// A block wider than the threshold still pays for DP.
	opts.GreedyThreshold = 2
	q2 := buildQuery(t, db, threeWay)
	o2 := optimizer(q2, opts)
	if _, err := o2.Optimize(q2); err != nil {
		t.Fatal(err)
	}
	if o2.Tier != TierDP {
		t.Errorf("tier = %q, want %q for a 3-relation block over threshold 2", o2.Tier, TierDP)
	}
}

func TestTierGreedyFallbackBeyondMaxRelations(t *testing.T) {
	db := tierFixture(t)
	opts := DefaultOptions()
	opts.MaxRelations = 2
	q := buildQuery(t, db, threeWay)
	o := optimizer(q, opts)
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if o.Tier != TierGreedyFallback {
		t.Errorf("tier = %q, want %q when the block exceeds MaxRelations", o.Tier, TierGreedyFallback)
	}
	verifyPlan(t, db, q, plan)
}

func TestTierGreedyCostThreshold(t *testing.T) {
	db := tierFixture(t)
	q := buildQuery(t, db, threeWay)

	// A generous cost ceiling accepts the greedy order everywhere.
	opts := DefaultOptions()
	opts.GreedyCostThreshold = 1e12
	o := optimizer(q, opts)
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if o.Tier != TierGreedy {
		t.Errorf("tier = %q, want %q under a generous cost threshold", o.Tier, TierGreedy)
	}
	verifyPlan(t, db, q, plan)

	// An impossibly small ceiling rejects the greedy attempt: DP runs.
	opts.GreedyCostThreshold = 1e-9
	q2 := buildQuery(t, db, threeWay)
	o2 := optimizer(q2, opts)
	plan2, err := o2.Optimize(q2)
	if err != nil {
		t.Fatal(err)
	}
	if o2.Tier != TierDP {
		t.Errorf("tier = %q, want %q when greedy cost exceeds the ceiling", o2.Tier, TierDP)
	}
	// The DP plan must never cost more than the rejected greedy one.
	_, cGreedy := plan.Estimate()
	_, cDP := plan2.Estimate()
	if cDP > cGreedy {
		t.Errorf("DP cost %v exceeds greedy cost %v", cDP, cGreedy)
	}
}
