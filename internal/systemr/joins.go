package systemr

import (
	"math"

	"repro/internal/logical"
	"repro/internal/physical"
)

// keyPair is one equi-join column pair aligned (left, right).
type keyPair struct {
	l, r logical.ColumnID
}

// classifyJoinPreds splits predicates into aligned equi-key pairs and
// residual predicates, given the columns available on each side.
func classifyJoinPreds(preds []logical.Scalar, leftCols, rightCols logical.ColSet) (keys []keyPair, extras []logical.Scalar) {
	for _, p := range preds {
		if l, r, ok := equiCols(p); ok {
			switch {
			case leftCols.Contains(l) && rightCols.Contains(r):
				keys = append(keys, keyPair{l, r})
				continue
			case leftCols.Contains(r) && rightCols.Contains(l):
				keys = append(keys, keyPair{r, l})
				continue
			}
		}
		extras = append(extras, p)
	}
	return keys, extras
}

func colSetOf(cols []logical.ColumnID) logical.ColSet {
	var s logical.ColSet
	for _, c := range cols {
		s.Add(c)
	}
	return s
}

// joinCandidates generates the physical alternatives for joining left and
// right plan sets under the given predicates: nested-loop, hash, sort-merge
// (with sort enforcers as needed) and index nested-loop when the right side
// is a base relation with a usable index.
func (o *Optimizer) joinCandidates(kind logical.JoinKind, leftPlans, rightPlans []physical.Plan, rightLeaf logical.RelExpr, preds []logical.Scalar, outRows float64) []physical.Plan {
	if len(leftPlans) == 0 || len(rightPlans) == 0 {
		return nil
	}
	leftCols := colSetOf(leftPlans[0].Columns())
	rightCols := colSetOf(rightPlans[0].Columns())
	keys, extras := classifyJoinPreds(preds, leftCols, rightCols)

	var out []physical.Plan
	for _, l := range leftPlans {
		lRows, lCost := l.Estimate()
		for _, r := range rightPlans {
			rRows, rCost := r.Estimate()
			// Nested-loop join: always applicable.
			out = append(out, &physical.NLJoin{
				Props: physical.Props{Rows: outRows, Cost: lCost + o.Model.NLJoin(lRows, rRows, rCost)},
				Kind:  kind, Left: l, Right: r, On: preds,
			})
			if len(keys) > 0 && !o.Opts.DisableHashJoin {
				out = append(out, &physical.HashJoin{
					Props: physical.Props{Rows: outRows, Cost: lCost + rCost + o.Model.HashJoin(lRows, rRows)},
					Kind:  kind, Left: l, Right: r,
					LeftKeys: pairLefts(keys), RightKeys: pairRights(keys), ExtraOn: extras,
				})
			}
			if len(keys) > 0 && !o.Opts.DisableMergeJoin && kind != logical.FullOuterJoin {
				out = append(out, o.mergeCandidate(kind, l, r, keys, extras, outRows))
			}
		}
	}
	// Index nested-loop: right side must be a single base relation.
	if rightLeaf != nil && len(keys) > 0 && !o.Opts.DisableINLJoin &&
		(kind == logical.InnerJoin || kind == logical.LeftOuterJoin || kind == logical.SemiJoin || kind == logical.AntiJoin) {
		for _, l := range leftPlans {
			if p := o.inlCandidate(kind, l, rightLeaf, keys, extras, outRows); p != nil {
				out = append(out, p)
			}
		}
	}
	o.Metrics.PlansCosted += len(out)
	return out
}

func pairLefts(keys []keyPair) []logical.ColumnID {
	out := make([]logical.ColumnID, len(keys))
	for i, k := range keys {
		out[i] = k.l
	}
	return out
}

func pairRights(keys []keyPair) []logical.ColumnID {
	out := make([]logical.ColumnID, len(keys))
	for i, k := range keys {
		out[i] = k.r
	}
	return out
}

// mergeCandidate builds a sort-merge join, adding Sort enforcers for inputs
// whose existing ordering does not already cover the keys — the mechanism by
// which interesting orders pay off.
func (o *Optimizer) mergeCandidate(kind logical.JoinKind, l, r physical.Plan, keys []keyPair, extras []logical.Scalar, outRows float64) physical.Plan {
	var lWant, rWant logical.Ordering
	for _, k := range keys {
		lWant = append(lWant, logical.OrderSpec{Col: k.l})
		rWant = append(rWant, logical.OrderSpec{Col: k.r})
	}
	lRows, lCost := l.Estimate()
	if !lWant.SatisfiedBy(l.Ordering()) {
		lCost += o.Model.Sort(lRows)
		l = &physical.Sort{Props: physical.Props{Rows: lRows, Cost: lCost}, Input: l, By: lWant}
	}
	rRows, rCost := r.Estimate()
	if !rWant.SatisfiedBy(r.Ordering()) {
		rCost += o.Model.Sort(rRows)
		r = &physical.Sort{Props: physical.Props{Rows: rRows, Cost: rCost}, Input: r, By: rWant}
	}
	return &physical.MergeJoin{
		Props: physical.Props{Rows: outRows, Cost: lCost + rCost + o.Model.MergeJoin(lRows, rRows)},
		Kind:  kind, Left: l, Right: r,
		LeftKeys: pairLefts(keys), RightKeys: pairRights(keys), ExtraOn: extras,
	}
}

// inlCandidate builds an index nested-loop join probing an index of the
// right base relation, or nil when no index matches the join keys.
func (o *Optimizer) inlCandidate(kind logical.JoinKind, l physical.Plan, rightLeaf logical.RelExpr, keys []keyPair, extras []logical.Scalar, outRows float64) physical.Plan {
	scan, localFilters := scanOf(rightLeaf)
	if scan == nil {
		return nil
	}
	rStats := o.Est.Stats(scan)
	// Index probes fetch by row ID, so segment pruning does not apply here:
	// shape is taken without filters.
	tableRows, tablePages := o.Est.TableShape(scan, nil)

	var best physical.Plan
	bestCost := math.Inf(1)
	for _, ix := range scan.Table.Indexes {
		// Match the longest prefix of index columns against join keys.
		var leftKeys []logical.ColumnID
		used := map[int]bool{}
		for _, ord := range ix.Cols {
			col, ok := o.ordToColID(scan, ord)
			if !ok {
				break
			}
			found := -1
			for ki, k := range keys {
				if !used[ki] && k.r == col {
					found = ki
					break
				}
			}
			if found < 0 {
				break
			}
			used[found] = true
			leftKeys = append(leftKeys, keys[found].l)
		}
		if len(leftKeys) == 0 {
			continue
		}
		// Residuals: unmatched equi keys plus extras plus right-local preds.
		var residual []logical.Scalar
		for ki, k := range keys {
			if !used[ki] {
				residual = append(residual, &logical.Cmp{Op: logical.CmpEq, L: &logical.Col{ID: k.l}, R: &logical.Col{ID: k.r}})
			}
		}
		residual = append(residual, extras...)
		residual = append(residual, localFilters...)

		// Matches per outer probe from the index's distinct keys.
		dist := ix.DistinctKeys
		if dist <= 0 {
			if cs, ok := rStats.Cols[mustColID(o, scan, ix.Cols[0])]; ok && cs != nil {
				dist = cs.Distinct
			}
		}
		if dist <= 0 {
			dist = 1
		}
		matchPerOuter := tableRows / dist
		lRows, lCost := l.Estimate()
		cost := lCost + o.Model.INLJoin(lRows, matchPerOuter, tableRows, tablePages, ix.Clustered) +
			o.Model.Filter(lRows*matchPerOuter, len(residual))
		if cost >= bestCost {
			continue
		}
		bestCost = cost
		best = &physical.INLJoin{
			Props:    physical.Props{Rows: outRows, Cost: cost},
			Kind:     kind,
			Left:     l,
			Table:    scan.Table,
			Index:    ix,
			Binding:  scan.Binding,
			Cols:     scan.Cols,
			ColOrds:  o.scanOrds(scan.Cols),
			LeftKeys: leftKeys,
			ExtraOn:  residual,
		}
	}
	return best
}

func mustColID(o *Optimizer, scan *logical.Scan, ord int) logical.ColumnID {
	if id, ok := o.ordToColID(scan, ord); ok {
		return id
	}
	return 0
}

// scanOf unwraps a leaf into its Scan and any local filters.
func scanOf(leaf logical.RelExpr) (*logical.Scan, []logical.Scalar) {
	switch t := leaf.(type) {
	case *logical.Scan:
		return t, nil
	case *logical.Select:
		if s, ok := t.Input.(*logical.Scan); ok {
			return s, t.Filters
		}
	}
	return nil, nil
}
