package systemr

import (
	"fmt"
	"math"

	"repro/internal/logical"
	"repro/internal/physical"
)

// OptimizeNaive optimizes the query like Optimize but enumerates join orders
// exhaustively — every permutation of the relations as a left-deep tree,
// with no memoization across permutations. It is the O(n!) baseline of §3
// that dynamic programming improves to O(n·2^(n-1)).
func (o *Optimizer) OptimizeNaive(q *logical.Query) (physical.Plan, error) {
	interesting := o.interestingCols(q)
	return o.optimizeRoot(q, interesting, o.optimizeNaiveRel)
}

func (o *Optimizer) optimizeNaiveRel(e logical.RelExpr, interesting logical.ColSet) (physical.Plan, error) {
	switch t := e.(type) {
	case *logical.Select:
		if blockRoot(e) {
			return o.naiveBlock(e, interesting)
		}
		in, err := o.optimizeNaiveRel(t.Input, interesting)
		if err != nil {
			return nil, err
		}
		return o.addFilter(in, t.Filters), nil
	case *logical.Join:
		if t.Kind == logical.InnerJoin {
			return o.naiveBlock(e, interesting)
		}
	case *logical.Project:
		in, err := o.optimizeNaiveRel(t.Input, interesting)
		if err != nil {
			return nil, err
		}
		rows, c := in.Estimate()
		return &physical.Project{
			Props: physical.Props{Rows: rows, Cost: c + o.Model.Project(rows, len(t.Items))},
			Input: in, Items: t.Items,
		}, nil
	case *logical.GroupBy:
		cp := *t
		in, err := o.optimizeNaiveRel(t.Input, interesting)
		if err != nil {
			return nil, err
		}
		inRows, inCost := in.Estimate()
		outRows := o.Est.Stats(&cp).Rows
		return &physical.HashGroupBy{
			Props: physical.Props{Rows: outRows, Cost: inCost + o.Model.HashGroupBy(inRows, len(t.Aggs))},
			Input: in, GroupCols: t.GroupCols, Aggs: t.Aggs,
		}, nil
	case *logical.Limit:
		in, err := o.optimizeNaiveRel(t.Input, interesting)
		if err != nil {
			return nil, err
		}
		rows, c := in.Estimate()
		return &physical.LimitOp{
			Props: physical.Props{Rows: math.Min(rows, float64(t.N)), Cost: c},
			Input: in, N: t.N,
		}, nil
	}
	return o.optimize(e, interesting)
}

// naiveBlock enumerates all permutations of the block's relations.
func (o *Optimizer) naiveBlock(root logical.RelExpr, interesting logical.ColSet) (physical.Plan, error) {
	leaves, preds, ok := logical.ExtractJoinBlock(root)
	if !ok {
		return nil, fmt.Errorf("systemr: not a join block")
	}
	n := len(leaves)
	if n > 10 {
		return nil, fmt.Errorf("systemr: naive enumeration of %d relations is infeasible", n)
	}
	g := logical.BuildQueryGraph(leaves, preds)
	b := &block{
		opt:         o,
		leaves:      leaves,
		graph:       g,
		interesting: interesting.Copy(),
		cardMemo:    map[uint64]float64{},
		relMemo:     map[uint64]logical.RelExpr{},
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var best physical.Plan
	bestCost := math.Inf(1)
	var walk func(k int) error
	walk = func(k int) error {
		if k == n {
			p, err := b.costPermutation(perm)
			if err != nil || p == nil {
				return err
			}
			if _, c := p.Estimate(); c < bestCost {
				best, bestCost = p, c
			}
			return nil
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if err := walk(k + 1); err != nil {
				return err
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, err
	}
	if best == nil {
		return nil, fmt.Errorf("systemr: naive enumeration found no plan")
	}
	return best, nil
}

// costPermutation builds the left-deep plan for one relation order, choosing
// the cheapest algorithms at each step. It returns nil (not an error) for
// orders requiring a Cartesian product when they are disabled.
func (b *block) costPermutation(perm []int) (physical.Plan, error) {
	cands, err := b.leafCandidates(perm[0])
	if err != nil {
		return nil, err
	}
	cur := cands
	mask := uint64(1) << uint(perm[0])
	for _, next := range perm[1:] {
		bit := uint64(1) << uint(next)
		preds := b.joinPreds(mask, bit)
		if len(preds) == 0 && !b.opt.Opts.CartesianProducts {
			return nil, nil
		}
		rightPlans, err := b.leafCandidates(next)
		if err != nil {
			return nil, err
		}
		mask |= bit
		rows := b.card(mask)
		joined := b.opt.joinCandidates(logical.InnerJoin, cur, rightPlans, b.rightLeafLogical(bit), preds, rows)
		if len(joined) == 0 {
			return nil, nil
		}
		// Keep the per-interesting-order frontier to mirror DP's pruning
		// within a single permutation.
		frontier := map[string]physical.Plan{}
		for _, p := range joined {
			key := b.entryKey(p)
			if cur, ok := frontier[key]; ok {
				_, cc := cur.Estimate()
				if _, pc := p.Estimate(); pc >= cc {
					continue
				}
			}
			frontier[key] = p
		}
		cur = cur[:0]
		for _, p := range frontier {
			cur = append(cur, p)
		}
	}
	return cheapest(cur), nil
}
