// Package systemr implements the System-R optimizer of Section 3 of the
// paper: bottom-up dynamic-programming join enumeration over linear (or,
// optionally, bushy) join sequences, cost-based access path selection, and
// pruning moderated by interesting orders. A naive O(n!) enumerator is
// included as the baseline the paper compares DP against.
package systemr

import (
	"fmt"
	"math"

	"repro/internal/cost"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/stats"
)

// Options tunes the search space — the knobs §4.1.1 describes.
type Options struct {
	// Bushy admits bushy join trees; otherwise only linear (left-deep)
	// sequences are enumerated, as in System R.
	Bushy bool
	// CartesianProducts admits joins between disconnected subgraphs. System
	// R deferred Cartesian products; enabling them helps star queries.
	CartesianProducts bool
	// InterestingOrders keeps the best plan per interesting order instead
	// of a single best plan per subset.
	InterestingOrders bool
	// DisableINLJoin / DisableMergeJoin / DisableHashJoin shrink the
	// physical operator repertoire (System R had only NL and sort-merge).
	DisableINLJoin   bool
	DisableMergeJoin bool
	DisableHashJoin  bool
	// MaxRelations caps DP enumeration (beyond it, a greedy fallback runs).
	MaxRelations int
	// GreedyThreshold routes join blocks of up to this many relations to the
	// greedy orderer instead of DP — the adaptive fast-path that trades a
	// possibly worse join order for near-zero planning time on short
	// statements. 0 disables it (DP up to MaxRelations, greedy beyond: the
	// classical setup).
	GreedyThreshold int
	// GreedyCostThreshold, when > 0, orders every block greedily first and
	// accepts the result if its estimated cost is at or below the threshold;
	// costlier blocks fall through to full DP enumeration. This is the
	// "estimated total cost is small" trigger: cheap statements skip DP even
	// when they join more relations than GreedyThreshold.
	GreedyCostThreshold float64
}

// DefaultOptions mirrors classical System R: linear joins, no Cartesian
// products, interesting orders on.
func DefaultOptions() Options {
	return Options{InterestingOrders: true, MaxRelations: 16}
}

// Metrics counts enumeration work for the experiments (E2, E4, E14).
type Metrics struct {
	PlansCosted    int // physical plan alternatives costed
	SubsetsVisited int // DP table entries (relation subsets) expanded
	EntriesKept    int // plans retained after pruning
}

// Tier identifies which planning tier produced a plan — the adaptive
// fast-path marker EXPLAIN surfaces.
type Tier string

// Planning tiers, ordered by enumeration effort.
const (
	// TierTrivial: no join block of two or more relations was ordered.
	TierTrivial Tier = "trivial"
	// TierGreedy: the greedy fast-path ordered every join block.
	TierGreedy Tier = "greedy"
	// TierGreedyFallback: greedy ran because a block exceeded MaxRelations
	// (the classical overflow fallback, not the adaptive fast-path).
	TierGreedyFallback Tier = "greedy-fallback"
	// TierDP: at least one block paid for full DP enumeration.
	TierDP Tier = "dp"
)

// tierRank orders tiers so a query touching several join blocks reports the
// most expensive tier any of them used.
func tierRank(t Tier) int {
	switch t {
	case TierGreedy:
		return 1
	case TierGreedyFallback:
		return 2
	case TierDP:
		return 3
	}
	return 0
}

// Optimizer drives optimization of a logical query into a physical plan.
type Optimizer struct {
	Est     *stats.Estimator
	Model   cost.Model
	Opts    Options
	Metrics Metrics
	// Tier reports which planning tier produced the last Optimize call's
	// plan (the most expensive tier when the query has several join blocks).
	Tier Tier
	// requiredOrder is the query's ORDER BY; the DP's final selection
	// compares order-providing plans against cheapest-plus-sort (§3's
	// payoff for retaining interesting orders).
	requiredOrder logical.Ordering
}

// New returns an optimizer over the given estimator and cost model.
func New(est *stats.Estimator, model cost.Model, opts Options) *Optimizer {
	if opts.MaxRelations <= 0 {
		opts.MaxRelations = 16
	}
	return &Optimizer{Est: est, Model: model, Opts: opts}
}

// Optimize produces a physical plan for the query. The query's ORDER BY is
// treated as an interesting order: if the chosen plan does not provide it,
// a Sort enforcer is added at the root.
func (o *Optimizer) Optimize(q *logical.Query) (physical.Plan, error) {
	interesting := o.interestingCols(q)
	o.requiredOrder = q.OrderBy
	o.Tier = TierTrivial
	defer func() { o.requiredOrder = nil }()
	return o.optimizeRoot(q, interesting, o.optimize)
}

// noteTier records the planning tier one join block used, keeping the most
// expensive across the query's blocks.
func (o *Optimizer) noteTier(t Tier) {
	if tierRank(t) > tierRank(o.Tier) {
		o.Tier = t
	}
}

// optimizeRoot applies the ORDER BY enforcer in the right place relative to
// a root LIMIT (SQL sorts before limiting).
func (o *Optimizer) optimizeRoot(q *logical.Query, interesting logical.ColSet,
	inner func(logical.RelExpr, logical.ColSet) (physical.Plan, error)) (physical.Plan, error) {
	root := q.Root
	var limitN int64 = -1
	if lim, ok := root.(*logical.Limit); ok && len(q.OrderBy) > 0 {
		root = lim.Input
		limitN = lim.N
	}
	plan, err := inner(root, interesting)
	if err != nil {
		return nil, err
	}
	if len(q.OrderBy) > 0 && !q.OrderBy.SatisfiedBy(plan.Ordering()) {
		rows, c := plan.Estimate()
		plan = &physical.Sort{
			Props: physical.Props{Rows: rows, Cost: c + o.Model.Sort(rows)},
			Input: plan,
			By:    q.OrderBy,
		}
	}
	if limitN >= 0 {
		rows, c := plan.Estimate()
		if float64(limitN) < rows {
			rows = float64(limitN)
		}
		plan = &physical.LimitOp{
			Props: physical.Props{Rows: rows, Cost: c + o.Model.Limit(rows)},
			Input: plan, N: limitN,
		}
	}
	return plan, nil
}

// interestingCols collects columns whose orderings are potentially
// consequential (§3): ORDER BY and GROUP BY columns. Join columns are added
// inside the DP per block.
func (o *Optimizer) interestingCols(q *logical.Query) logical.ColSet {
	var set logical.ColSet
	for _, s := range q.OrderBy {
		set.Add(s.Col)
	}
	logical.VisitRel(q.Root, func(e logical.RelExpr) {
		if g, ok := e.(*logical.GroupBy); ok {
			for _, c := range g.GroupCols {
				set.Add(c)
			}
		}
	})
	return set
}

// optimize recursively maps a logical tree to a physical plan. Inner-join
// blocks are handed to the DP enumerator; other operators are mapped
// directly with local algorithm choices.
func (o *Optimizer) optimize(e logical.RelExpr, interesting logical.ColSet) (physical.Plan, error) {
	switch t := e.(type) {
	case *logical.Scan:
		cands := o.accessPaths(t, nil)
		return cheapest(cands), nil
	case *logical.Values:
		rows := float64(len(t.Rows))
		return &physical.ValuesOp{
			Props: physical.Props{Rows: rows, Cost: o.Model.Values(rows)},
			Cols:  t.Cols, Rows: t.Rows,
		}, nil
	case *logical.Select:
		return o.optimizeBlock(e, interesting)
	case *logical.Join:
		if t.Kind == logical.InnerJoin {
			return o.optimizeBlock(e, interesting)
		}
		left, err := o.optimize(t.Left, interesting)
		if err != nil {
			return nil, err
		}
		right, err := o.optimize(t.Right, interesting)
		if err != nil {
			return nil, err
		}
		rows := o.Est.Stats(t).Rows
		cands := o.joinCandidates(t.Kind, []physical.Plan{left}, []physical.Plan{right}, t.Right, t.On, rows)
		if len(cands) == 0 {
			return nil, fmt.Errorf("systemr: no join candidates for %v", t.Kind)
		}
		return cheapest(cands), nil
	case *logical.Project:
		in, err := o.optimize(t.Input, interesting)
		if err != nil {
			return nil, err
		}
		rows, c := in.Estimate()
		return &physical.Project{
			Props: physical.Props{Rows: rows, Cost: c + o.Model.Project(rows, len(t.Items))},
			Input: in, Items: t.Items,
		}, nil
	case *logical.GroupBy:
		return o.optimizeGroupBy(t, interesting)
	case *logical.Limit:
		in, err := o.optimize(t.Input, interesting)
		if err != nil {
			return nil, err
		}
		rows, c := in.Estimate()
		outRows := math.Min(rows, float64(t.N))
		return &physical.LimitOp{
			Props: physical.Props{Rows: outRows, Cost: c + o.Model.Limit(outRows)},
			Input: in, N: t.N,
		}, nil
	case *logical.Union:
		left, err := o.optimize(t.Left, interesting)
		if err != nil {
			return nil, err
		}
		right, err := o.optimize(t.Right, interesting)
		if err != nil {
			return nil, err
		}
		lr, lc := left.Estimate()
		rr, rc := right.Estimate()
		rows := lr + rr
		return &physical.UnionAll{
			Props: physical.Props{Rows: rows, Cost: lc + rc + rows*o.Model.CPUTuple},
			Left:  left, Right: right,
			LeftCols: t.LeftCols, RightCols: t.RightCols, Cols: t.Cols,
		}, nil
	}
	return nil, fmt.Errorf("systemr: cannot optimize %T", e)
}

// blockRoot reports whether e roots an inner-join block with more than one
// relation (worth DP enumeration).
func blockRoot(e logical.RelExpr) bool {
	leaves, _, ok := logical.ExtractJoinBlock(e)
	return ok && len(leaves) > 1
}

// addFilter wraps a plan with a Filter node (costed).
func (o *Optimizer) addFilter(in physical.Plan, preds []logical.Scalar) physical.Plan {
	rows, c := in.Estimate()
	// Without a logical handle we scale rows by the default selectivity per
	// predicate; block optimization paths use the estimator instead.
	out := rows
	for range preds {
		out *= stats.DefaultSel
	}
	return &physical.Filter{
		Props: physical.Props{Rows: out, Cost: c + o.Model.Filter(rows, len(preds))},
		Input: in, Preds: preds,
	}
}

// optimizeGroupBy picks hash vs. (sorted) stream aggregation.
func (o *Optimizer) optimizeGroupBy(g *logical.GroupBy, interesting logical.ColSet) (physical.Plan, error) {
	for _, c := range g.GroupCols {
		interesting = interesting.Copy()
		interesting.Add(c)
	}
	in, err := o.optimize(g.Input, interesting)
	if err != nil {
		return nil, err
	}
	inRows, inCost := in.Estimate()
	outRows := o.Est.Stats(g).Rows

	hash := &physical.HashGroupBy{
		Props: physical.Props{Rows: outRows, Cost: inCost + o.Model.HashGroupBy(inRows, len(g.Aggs))},
		Input: in, GroupCols: g.GroupCols, Aggs: g.Aggs,
	}
	o.Metrics.PlansCosted++
	var want logical.Ordering
	for _, c := range g.GroupCols {
		want = append(want, logical.OrderSpec{Col: c})
	}
	var stream physical.Plan
	if len(g.GroupCols) > 0 {
		src := in
		srcCost := inCost
		if !want.SatisfiedBy(in.Ordering()) {
			srcCost += o.Model.Sort(inRows)
			src = &physical.Sort{Props: physical.Props{Rows: inRows, Cost: srcCost}, Input: in, By: want}
		}
		stream = &physical.StreamGroupBy{
			Props: physical.Props{Rows: outRows, Cost: srcCost + o.Model.StreamGroupBy(inRows, len(g.Aggs))},
			Input: src, GroupCols: g.GroupCols, Aggs: g.Aggs,
		}
		o.Metrics.PlansCosted++
	}
	if stream != nil {
		_, hc := hash.Estimate()
		_, sc := stream.Estimate()
		if sc < hc {
			return stream, nil
		}
	}
	return hash, nil
}

// cheapest returns the lowest-cost plan of a non-empty candidate list.
func cheapest(cands []physical.Plan) physical.Plan {
	best := cands[0]
	_, bestCost := best.Estimate()
	for _, c := range cands[1:] {
		if _, cc := c.Estimate(); cc < bestCost {
			best, bestCost = c, cc
		}
	}
	return best
}
