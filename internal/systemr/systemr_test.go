package systemr

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/datum"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/sql"
	"repro/internal/stats"
	"repro/internal/workload"
)

func buildQuery(t *testing.T, db *workload.DB, q string) *logical.Query {
	t.Helper()
	sel, err := sql.ParseSelect(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	query, err := logical.NewBuilder(db.Cat).Build(sel)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	logical.NormalizeQuery(query, logical.DefaultNormalize())
	logical.PruneColumns(query)
	return query
}

func optimizer(q *logical.Query, opts Options) *Optimizer {
	return New(stats.NewEstimator(q.Meta), cost.DefaultModel(), opts)
}

// runBoth executes the optimized plan and the naive reference and compares
// multisets.
func verifyPlan(t *testing.T, db *workload.DB, q *logical.Query, plan physical.Plan) {
	t.Helper()
	ctx := exec.NewCtx(db.Store, q.Meta)
	got, err := exec.RunPlanQuery(plan, q, ctx)
	if err != nil {
		t.Fatalf("execute plan: %v\n%s", err, physical.Format(plan, q.Meta))
	}
	refCtx := exec.NewCtx(db.Store, q.Meta)
	want, err := refCtx.RunQuery(q)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	gs, ws := rowStrings(got), rowStrings(want)
	if strings.Join(gs, ";") != strings.Join(ws, ";") {
		t.Fatalf("plan and reference disagree\nplan (%d rows): %.300v\nref  (%d rows): %.300v\n%s",
			len(gs), gs, len(ws), ws, physical.Format(plan, q.Meta))
	}
}

// rowStrings renders rows with floats rounded, so that plans whose summation
// order differs still compare equal.
func rowStrings(res *exec.Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		var sb strings.Builder
		sb.WriteByte('(')
		for j, d := range r {
			if j > 0 {
				sb.WriteString(", ")
			}
			if !d.IsNull() && d.Kind() == datum.KindFloat {
				fmt.Fprintf(&sb, "%.6g", d.Float())
			} else {
				sb.WriteString(d.String())
			}
		}
		sb.WriteByte(')')
		out[i] = sb.String()
	}
	sort.Strings(out)
	return out
}

func TestOptimizeSimpleFilterUsesIndex(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 20000, Depts: 200})
	db.Analyze(stats.AnalyzeOptions{})
	q := buildQuery(t, db, "SELECT name FROM Emp WHERE eid = 17")
	o := optimizer(q, DefaultOptions())
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	hasIndexScan := false
	var walk func(p physical.Plan)
	walk = func(p physical.Plan) {
		if _, ok := p.(*physical.IndexScan); ok {
			hasIndexScan = true
		}
		for _, c := range physical.Children(p) {
			walk(c)
		}
	}
	walk(plan)
	if !hasIndexScan {
		t.Errorf("point lookup should use the index:\n%s", physical.Format(plan, q.Meta))
	}
	verifyPlan(t, db, q, plan)
}

func TestOptimizeUnselectiveUsesSeqScan(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 20000, Depts: 200})
	db.Analyze(stats.AnalyzeOptions{})
	// did has a non-clustered index; an unselective range over it would pay
	// one random fetch per row, so the sequential scan must win.
	q := buildQuery(t, db, "SELECT name FROM Emp WHERE did >= 0")
	o := optimizer(q, DefaultOptions())
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rootScan(plan).(*physical.TableScan); !ok {
		t.Errorf("unselective predicate should sequential-scan:\n%s", physical.Format(plan, q.Meta))
	}
}

func rootScan(p physical.Plan) physical.Plan {
	for {
		ch := physical.Children(p)
		if len(ch) == 0 {
			return p
		}
		p = ch[0]
	}
}

func TestDPMatchesNaive(t *testing.T) {
	db := workload.Chain(workload.ChainConfig{Tables: 5, RowsPer: []int{2000, 500, 1000, 100, 400}, Seed: 3})
	db.Analyze(stats.AnalyzeOptions{})
	q := buildQuery(t, db, workload.ChainQuery(5))

	dpOpt := optimizer(q, DefaultOptions())
	dpPlan, err := dpOpt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	nvOpt := optimizer(q, DefaultOptions())
	nvPlan, err := nvOpt.OptimizeNaive(q)
	if err != nil {
		t.Fatal(err)
	}
	_, dpCost := dpPlan.Estimate()
	_, nvCost := nvPlan.Estimate()
	// DP must find a plan at least as good as exhaustive left-deep search.
	if dpCost > nvCost*1.0001 {
		t.Errorf("DP cost %v worse than naive %v\nDP:\n%s\nNaive:\n%s",
			dpCost, nvCost, physical.Format(dpPlan, q.Meta), physical.Format(nvPlan, q.Meta))
	}
	// And do so while costing far fewer plans.
	if dpOpt.Metrics.PlansCosted >= nvOpt.Metrics.PlansCosted {
		t.Errorf("DP costed %d plans, naive %d — DP should be cheaper",
			dpOpt.Metrics.PlansCosted, nvOpt.Metrics.PlansCosted)
	}
	verifyPlan(t, db, q, dpPlan)
	verifyPlan(t, db, q, nvPlan)
}

func TestInterestingOrdersImprovePlans(t *testing.T) {
	// Three-way join on the same column: R1.fk = R2.pk and R2.pk = R3...
	// Use the chain where orderings on the shared columns matter.
	db := workload.Chain(workload.ChainConfig{Tables: 4, RowsPer: []int{20000, 20000, 20000, 20000}, Seed: 5})
	db.Analyze(stats.AnalyzeOptions{})
	q := buildQuery(t, db, workload.ChainQuery(4))

	withIO := optimizer(q, Options{InterestingOrders: true, MaxRelations: 16})
	planIO, err := withIO.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	withoutIO := optimizer(q, Options{InterestingOrders: false, MaxRelations: 16})
	planNoIO, err := withoutIO.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	_, cIO := planIO.Estimate()
	_, cNoIO := planNoIO.Estimate()
	if cIO > cNoIO*1.0001 {
		t.Errorf("interesting orders should never hurt: with=%v without=%v", cIO, cNoIO)
	}
	// More plans are kept with interesting orders on.
	if withIO.Metrics.EntriesKept <= withoutIO.Metrics.EntriesKept {
		t.Errorf("interesting orders should retain more DP entries: %d vs %d",
			withIO.Metrics.EntriesKept, withoutIO.Metrics.EntriesKept)
	}
}

func TestBushyNoWorseThanLinear(t *testing.T) {
	db := workload.Chain(workload.ChainConfig{Tables: 5, RowsPer: []int{3000, 50, 3000, 50, 3000}, Seed: 7})
	db.Analyze(stats.AnalyzeOptions{})
	q := buildQuery(t, db, workload.ChainQuery(5))

	lin := optimizer(q, DefaultOptions())
	linPlan, err := lin.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	bushy := optimizer(q, Options{Bushy: true, InterestingOrders: true, MaxRelations: 16})
	bushyPlan, err := bushy.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	_, cl := linPlan.Estimate()
	_, cb := bushyPlan.Estimate()
	if cb > cl*1.0001 {
		t.Errorf("bushy space includes linear; cost must not increase: bushy=%v linear=%v", cb, cl)
	}
	if bushy.Metrics.PlansCosted <= lin.Metrics.PlansCosted {
		t.Errorf("bushy enumeration should cost more plans: %d vs %d",
			bushy.Metrics.PlansCosted, lin.Metrics.PlansCosted)
	}
	verifyPlan(t, db, q, bushyPlan)
}

func TestCartesianProductHelpsStar(t *testing.T) {
	db := workload.Star(workload.StarConfig{FactRows: 20000, DimRows: []int{50, 50}, Seed: 11})
	db.Analyze(stats.AnalyzeOptions{})
	// Highly selective dimension filters: joining the dimensions first via a
	// Cartesian product, then one probe into the fact, can win.
	q := buildQuery(t, db, `SELECT sales.amount FROM sales, dim1, dim2
		WHERE sales.k1 = dim1.k AND sales.k2 = dim2.k
		AND dim1.filt < 1 AND dim2.filt < 1`)
	noCP := optimizer(q, Options{InterestingOrders: true, MaxRelations: 16})
	planNo, err := noCP.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	withCP := optimizer(q, Options{InterestingOrders: true, CartesianProducts: true, Bushy: true, MaxRelations: 16})
	planCP, err := withCP.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	_, cNo := planNo.Estimate()
	_, cCP := planCP.Estimate()
	if cCP > cNo*1.0001 {
		t.Errorf("expanded space must not be worse: with CP %v vs without %v", cCP, cNo)
	}
	verifyPlan(t, db, q, planCP)
	verifyPlan(t, db, q, planNo)
}

func TestOptimizeGroupByChoosesStreamWhenSorted(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 20000, Depts: 100})
	db.Analyze(stats.AnalyzeOptions{})
	// Grouping on the clustered key: stream aggregation needs no sort.
	q := buildQuery(t, db, "SELECT eid, COUNT(*) FROM Emp GROUP BY eid")
	o := optimizer(q, DefaultOptions())
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	var walk func(p physical.Plan)
	walk = func(p physical.Plan) {
		if _, ok := p.(*physical.StreamGroupBy); ok {
			found = true
		}
		for _, c := range physical.Children(p) {
			walk(c)
		}
	}
	walk(plan)
	if !found {
		t.Errorf("grouping on clustered key should stream:\n%s", physical.Format(plan, q.Meta))
	}
	verifyPlan(t, db, q, plan)
}

func TestOptimizeOuterAndSemiJoins(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 3000, Depts: 50})
	db.Analyze(stats.AnalyzeOptions{})
	for _, qs := range []string{
		"SELECT e.name, d.dname FROM Emp e LEFT OUTER JOIN Dept d ON e.did = d.did AND d.budget > 500",
		"SELECT d.dname FROM Dept d WHERE EXISTS (SELECT 1 FROM Emp e WHERE e.did = d.did AND e.sal > 10000)",
	} {
		q := buildQuery(t, db, qs)
		o := optimizer(q, DefaultOptions())
		plan, err := o.Optimize(q)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		verifyPlan(t, db, q, plan)
	}
}

func TestOptimizeManyQueriesAgainstReference(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 2000, Depts: 40})
	db.Analyze(stats.AnalyzeOptions{})
	queries := []string{
		"SELECT name FROM Emp WHERE sal > 10000 ORDER BY sal DESC LIMIT 10",
		"SELECT e.name, d.loc FROM Emp e, Dept d WHERE e.did = d.did AND d.loc = 'Denver'",
		"SELECT d.loc, COUNT(*), AVG(e.sal) FROM Emp e, Dept d WHERE e.did = d.did GROUP BY d.loc",
		"SELECT DISTINCT d.loc FROM Dept d",
		"SELECT e.name FROM Emp e, Dept d WHERE e.did = d.did AND d.budget > 900 AND e.age < 25",
		"SELECT e1.name FROM Emp e1, Emp e2 WHERE e1.did = e2.did AND e2.eid = 5",
		"SELECT COUNT(*) FROM Emp WHERE age BETWEEN 30 AND 40",
		"SELECT d.dname, SUM(e.sal) FROM Dept d LEFT OUTER JOIN Emp e ON d.did = e.did GROUP BY d.dname",
	}
	for _, qs := range queries {
		q := buildQuery(t, db, qs)
		o := optimizer(q, DefaultOptions())
		plan, err := o.Optimize(q)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		verifyPlan(t, db, q, plan)
	}
}

func TestGreedyFallbackLargeJoin(t *testing.T) {
	db := workload.Chain(workload.ChainConfig{Tables: 8, RowsPer: []int{200, 200, 200, 200, 200, 200, 200, 200}, Seed: 13})
	db.Analyze(stats.AnalyzeOptions{})
	q := buildQuery(t, db, workload.ChainQuery(8))
	o := optimizer(q, Options{InterestingOrders: true, MaxRelations: 4}) // force greedy
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	verifyPlan(t, db, q, plan)
}

func TestDisabledAlgorithms(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 2000, Depts: 40})
	db.Analyze(stats.AnalyzeOptions{})
	q := buildQuery(t, db, "SELECT e.name FROM Emp e, Dept d WHERE e.did = d.did")
	o := optimizer(q, Options{
		InterestingOrders: true, MaxRelations: 16,
		DisableHashJoin: true, DisableMergeJoin: true, DisableINLJoin: true,
	})
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(p physical.Plan)
	walk = func(p physical.Plan) {
		switch p.(type) {
		case *physical.HashJoin, *physical.MergeJoin, *physical.INLJoin:
			t.Errorf("disabled algorithm appeared: %T", p)
		}
		for _, c := range physical.Children(p) {
			walk(c)
		}
	}
	walk(plan)
	verifyPlan(t, db, q, plan)
}

func TestMetricsGrowth(t *testing.T) {
	db := workload.Chain(workload.ChainConfig{Tables: 6, RowsPer: []int{100, 100, 100, 100, 100, 100}, Seed: 17})
	db.Analyze(stats.AnalyzeOptions{})
	var prev int
	for n := 3; n <= 6; n++ {
		q := buildQuery(t, db, workload.ChainQuery(n))
		o := optimizer(q, DefaultOptions())
		if _, err := o.Optimize(q); err != nil {
			t.Fatal(err)
		}
		if o.Metrics.PlansCosted <= prev {
			t.Errorf("n=%d: plans costed %d should grow with n (prev %d)", n, o.Metrics.PlansCosted, prev)
		}
		prev = o.Metrics.PlansCosted
	}
}

func TestOrderByExploitsRetainedOrder(t *testing.T) {
	db := workload.Chain(workload.ChainConfig{Tables: 2, RowsPer: []int{30000, 30000}, Seed: 33})
	db.Analyze(stats.AnalyzeOptions{})
	// ORDER BY on the join column: a merge-join (or ordered index) plan
	// provides the order for free; the final pick must avoid a root Sort
	// when that is cheaper overall.
	q := buildQuery(t, db, "SELECT r1.pk, r2.payload FROM r1, r2 WHERE r1.fk = r2.pk ORDER BY r2.pk")
	o := optimizer(q, Options{InterestingOrders: true, MaxRelations: 16,
		DisableHashJoin: true, DisableINLJoin: true})
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, isSort := plan.(*physical.Sort); isSort {
		t.Errorf("root sort should be avoided by picking an ordered plan:\n%s",
			physical.Format(plan, q.Meta))
	}
	if !q.OrderBy.SatisfiedBy(plan.Ordering()) {
		t.Errorf("plan must still provide the required order:\n%s", physical.Format(plan, q.Meta))
	}
	// Execute the ordered plan (cheap: merge join); the naive reference
	// would be quadratic at this size and is covered by equivalence tests.
	ctx := exec.NewCtx(db.Store, q.Meta)
	res, err := exec.RunPlanQuery(plan, q, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 30000 {
		t.Errorf("FK join should return one row per r1 tuple, got %d", len(res.Rows))
	}
}
