// Package udp implements the expensive user-defined-predicate optimization
// of §7.2 of the paper. A UDP is characterized by a per-tuple evaluation cost
// and a selectivity; unlike cheap predicates, pushing it to the earliest
// point is no longer a sound heuristic.
//
// Three strategies are implemented and compared by E15:
//
//   - PushdownPlacement: the classical heuristic (evaluate ASAP) — wrong for
//     expensive predicates.
//   - RankPlacement: Hellerstein/Stonebraker predicate migration — order
//     predicates by rank = (1 - selectivity) / cost; provably optimal when
//     the query has no joins, but possibly suboptimal with joins.
//   - OptimalPlacement: the Chaudhuri–Shim approach — treat "which UDPs have
//     been applied" as a physical property of the plan and extend dynamic
//     programming over (join step, applied set); optimal, and polynomial in
//     the number of predicates for regular cost models.
package udp

import (
	"math"
	"sort"
)

// Predicate is one expensive predicate over the pipeline's rows.
type Predicate struct {
	Name string
	// Cost is the per-tuple evaluation cost.
	Cost float64
	// Sel is the fraction of tuples that pass.
	Sel float64
}

// Rank returns the predicate's rank. Evaluating predicates in *decreasing*
// rank order minimizes expected cost on a fixed stream: high rank = large
// selectivity payoff per unit cost.
func (p Predicate) Rank() float64 {
	if p.Cost <= 0 {
		return math.Inf(1)
	}
	return (1 - p.Sel) / p.Cost
}

// JoinStep describes one join in a left-deep pipeline: the factor by which
// the running cardinality is multiplied and the per-input-tuple cost of
// performing the join.
type JoinStep struct {
	Name string
	// Factor multiplies the running row count (fanout; < 1 for selective
	// joins, > 1 for expanding ones).
	Factor float64
	// CostPerRow is the processing cost per input row.
	CostPerRow float64
}

// Pipeline is the scenario: an initial row count, a sequence of joins, and a
// set of UDPs that may be evaluated at any position among the joins.
type Pipeline struct {
	InputRows float64
	Joins     []JoinStep
	Preds     []Predicate
}

// Placement maps each predicate (by index into Preds) to the join position
// it is applied after: 0 = before every join, len(Joins) = after all joins.
type Placement []int

// SequenceCost evaluates predicates in the given order over a fixed stream
// of rows (the no-join case): cost = Σ rows_i · cost_i with rows shrinking
// by each selectivity.
func SequenceCost(rows float64, preds []Predicate) float64 {
	total := 0.0
	for _, p := range preds {
		total += rows * p.Cost
		rows *= p.Sel
	}
	return total
}

// RankOrder returns the predicates sorted by decreasing rank — the optimal
// order for the no-join case ([29,30]).
func RankOrder(preds []Predicate) []Predicate {
	out := append([]Predicate{}, preds...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Rank() > out[j].Rank() })
	return out
}

// OptimalSequence exhaustively finds the cheapest evaluation order for a
// fixed stream (test oracle for RankOrder).
func OptimalSequence(rows float64, preds []Predicate) ([]Predicate, float64) {
	n := len(preds)
	best := append([]Predicate{}, preds...)
	bestCost := SequenceCost(rows, best)
	perm := append([]Predicate{}, preds...)
	var walk func(k int)
	walk = func(k int) {
		if k == n {
			if c := SequenceCost(rows, perm); c < bestCost {
				bestCost = c
				copy(best, perm)
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			walk(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	walk(0)
	return best, bestCost
}

// Cost evaluates the total cost of the pipeline under a placement: at each
// position, pending predicates assigned there run (in rank order among
// themselves — optimal within a position), then the next join runs.
func (pl *Pipeline) Cost(place Placement) float64 {
	rows := pl.InputRows
	total := 0.0
	for pos := 0; pos <= len(pl.Joins); pos++ {
		// Apply the predicates placed at this position, best rank first.
		var here []Predicate
		for pi, p := range pl.Preds {
			if place[pi] == pos {
				here = append(here, p)
			}
		}
		here = RankOrder(here)
		for _, p := range here {
			total += rows * p.Cost
			rows *= p.Sel
		}
		if pos < len(pl.Joins) {
			j := pl.Joins[pos]
			total += rows * j.CostPerRow
			rows *= j.Factor
		}
	}
	return total
}

// PushdownPlacement applies every predicate before the first join.
func (pl *Pipeline) PushdownPlacement() Placement {
	place := make(Placement, len(pl.Preds))
	return place
}

// PullupPlacement applies every predicate after the last join.
func (pl *Pipeline) PullupPlacement() Placement {
	place := make(Placement, len(pl.Preds))
	for i := range place {
		place[i] = len(pl.Joins)
	}
	return place
}

// RankPlacement interleaves predicates with joins by rank (predicate
// migration): joins are treated as pseudo-predicates with rank
// (1 - factor)/costPerRow, and every predicate is placed at the first
// position where its rank exceeds the next join's rank. This is the
// heuristic §7.2 notes may be suboptimal once joins are present.
func (pl *Pipeline) RankPlacement() Placement {
	place := make(Placement, len(pl.Preds))
	for pi, p := range pl.Preds {
		pos := 0
		for ji, j := range pl.Joins {
			jRank := math.Inf(1)
			if j.CostPerRow > 0 {
				jRank = (1 - j.Factor) / j.CostPerRow
			}
			if p.Rank() >= jRank {
				break
			}
			pos = ji + 1
		}
		place[pi] = pos
	}
	return place
}

// OptimalPlacement runs dynamic programming over (join position, set of
// applied predicates) — the applied set is the physical property of [8]. It
// returns the minimal cost placement. Exponential in len(Preds) in this
// general form; the paper's polynomial bound holds for regular cost models
// where only rank order matters, which the DP exploits implicitly by
// pruning dominated states.
func (pl *Pipeline) OptimalPlacement() (Placement, float64) {
	n := len(pl.Preds)
	if n > 20 {
		return pl.RankPlacement(), pl.Cost(pl.RankPlacement())
	}
	type state struct {
		cost float64
		rows float64
		// choice[mask] reconstructs the predicates applied at each step.
		place Placement
	}
	full := (1 << uint(n)) - 1
	// states[mask] = best (cost, rows) having applied exactly mask's
	// predicates before the current join position.
	cur := map[int]state{0: {cost: 0, rows: pl.InputRows, place: make(Placement, n)}}
	for pos := 0; pos <= len(pl.Joins); pos++ {
		// Expand: apply any subset of pending predicates at this position.
		next := map[int]state{}
		consider := func(mask int, s state) {
			if old, ok := next[mask]; !ok || s.cost < old.cost {
				next[mask] = s
			}
		}
		for mask, s := range cur {
			// Enumerate supersets reachable by applying pending preds in
			// rank order (applying in any other order is never better).
			pending := full &^ mask
			// Order pending by rank.
			var idx []int
			for i := 0; i < n; i++ {
				if pending&(1<<uint(i)) != 0 {
					idx = append(idx, i)
				}
			}
			sort.Slice(idx, func(a, b int) bool {
				return pl.Preds[idx[a]].Rank() > pl.Preds[idx[b]].Rank()
			})
			// Prefixes of the rank order (including empty).
			m, cst, rws := mask, s.cost, s.rows
			pplace := append(Placement{}, s.place...)
			consider(m, state{cost: cst, rows: rws, place: pplace})
			for _, i := range idx {
				cst += rws * pl.Preds[i].Cost
				rws *= pl.Preds[i].Sel
				m |= 1 << uint(i)
				np := append(Placement{}, pplace...)
				np[i] = pos
				pplace = np
				consider(m, state{cost: cst, rows: rws, place: pplace})
			}
		}
		// Perform the join at this position.
		if pos < len(pl.Joins) {
			j := pl.Joins[pos]
			for mask, s := range next {
				s.cost += s.rows * j.CostPerRow
				s.rows *= j.Factor
				next[mask] = s
			}
		}
		cur = next
	}
	best, ok := cur[full]
	if !ok {
		p := pl.PushdownPlacement()
		return p, pl.Cost(p)
	}
	return best.place, best.cost
}
