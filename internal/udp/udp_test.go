package udp

import (
	"math"
	"math/rand"
	"testing"
)

func TestRankOrderOptimalWithoutJoins(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(5)
		preds := make([]Predicate, n)
		for i := range preds {
			preds[i] = Predicate{
				Name: string(rune('a' + i)),
				Cost: 0.1 + rng.Float64()*10,
				Sel:  0.05 + rng.Float64()*0.9,
			}
		}
		rows := 1000.0
		ranked := RankOrder(preds)
		rankCost := SequenceCost(rows, ranked)
		_, optCost := OptimalSequence(rows, preds)
		if rankCost > optCost*1.0000001 {
			t.Fatalf("trial %d: rank order cost %v > optimal %v (preds %+v)", trial, rankCost, optCost, preds)
		}
	}
}

func TestRankOrderDecreasingRank(t *testing.T) {
	preds := []Predicate{
		{Name: "slow-selective", Cost: 10, Sel: 0.01},
		{Name: "fast-unselective", Cost: 0.1, Sel: 0.9},
		{Name: "fast-selective", Cost: 0.1, Sel: 0.1},
	}
	out := RankOrder(preds)
	for i := 1; i < len(out); i++ {
		if out[i-1].Rank() < out[i].Rank() {
			t.Fatalf("not sorted by rank: %+v", out)
		}
	}
	if out[0].Name != "fast-selective" {
		t.Errorf("fast selective predicate should run first, got %s", out[0].Name)
	}
}

func TestZeroCostRank(t *testing.T) {
	p := Predicate{Cost: 0, Sel: 0.5}
	if !math.IsInf(p.Rank(), 1) {
		t.Error("free predicates have infinite rank")
	}
}

// expensivePipeline reproduces the §7.2 scenario: an expensive predicate on
// the outer relation of a highly selective join. Pushing the predicate down
// evaluates it on every outer row; the optimal plan defers it until the join
// has discarded most rows.
func expensivePipeline() *Pipeline {
	return &Pipeline{
		InputRows: 100000,
		Joins: []JoinStep{
			{Name: "selective-join", Factor: 0.001, CostPerRow: 0.01},
		},
		Preds: []Predicate{
			{Name: "image-match", Cost: 50, Sel: 0.5},
		},
	}
}

func TestPushdownNotSoundForExpensivePreds(t *testing.T) {
	pl := expensivePipeline()
	push := pl.Cost(pl.PushdownPlacement())
	pull := pl.Cost(pl.PullupPlacement())
	if pull >= push {
		t.Fatalf("deferring the expensive predicate should win: pull=%v push=%v", pull, push)
	}
	_, opt := pl.OptimalPlacement()
	if opt > pull*1.0000001 {
		t.Errorf("optimal (%v) must be at least as good as pull-up (%v)", opt, pull)
	}
}

func TestOptimalNeverWorseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		nJoins := 1 + rng.Intn(3)
		nPreds := 1 + rng.Intn(4)
		pl := &Pipeline{InputRows: 1000 + rng.Float64()*100000}
		for j := 0; j < nJoins; j++ {
			pl.Joins = append(pl.Joins, JoinStep{
				Factor:     0.001 + rng.Float64()*3,
				CostPerRow: 0.001 + rng.Float64(),
			})
		}
		for p := 0; p < nPreds; p++ {
			pl.Preds = append(pl.Preds, Predicate{
				Cost: 0.01 + rng.Float64()*100,
				Sel:  0.01 + rng.Float64()*0.98,
			})
		}
		place, opt := pl.OptimalPlacement()
		if got := pl.Cost(place); math.Abs(got-opt) > 1e-6*math.Max(1, opt) {
			t.Fatalf("trial %d: DP cost %v != replayed placement cost %v", trial, opt, got)
		}
		for name, alt := range map[string]Placement{
			"pushdown": pl.PushdownPlacement(),
			"pullup":   pl.PullupPlacement(),
			"rank":     pl.RankPlacement(),
		} {
			if c := pl.Cost(alt); opt > c*1.0000001 {
				t.Fatalf("trial %d: optimal %v worse than %s %v\npipeline: %+v", trial, opt, name, c, pl)
			}
		}
	}
}

func TestRankHeuristicSuboptimalWithJoins(t *testing.T) {
	// Construct a case where interleaving by rank misplaces a predicate:
	// an expanding join (factor > 1) followed by a reducing join. The rank
	// heuristic compares only against the next join, missing the global
	// structure.
	found := false
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000 && !found; trial++ {
		pl := &Pipeline{InputRows: 10000}
		for j := 0; j < 2; j++ {
			pl.Joins = append(pl.Joins, JoinStep{
				Factor:     0.01 + rng.Float64()*4,
				CostPerRow: 0.001 + rng.Float64()*0.1,
			})
		}
		for p := 0; p < 2; p++ {
			pl.Preds = append(pl.Preds, Predicate{
				Cost: 0.1 + rng.Float64()*50,
				Sel:  0.05 + rng.Float64()*0.9,
			})
		}
		_, opt := pl.OptimalPlacement()
		if rankCost := pl.Cost(pl.RankPlacement()); rankCost > opt*1.05 {
			found = true
		}
	}
	if !found {
		t.Error("expected to find a scenario where the rank heuristic is suboptimal with joins")
	}
}

func TestOptimalPlacementLargeFallsBack(t *testing.T) {
	pl := &Pipeline{InputRows: 100, Joins: []JoinStep{{Factor: 0.5, CostPerRow: 0.1}}}
	for i := 0; i < 25; i++ {
		pl.Preds = append(pl.Preds, Predicate{Cost: 1, Sel: 0.5})
	}
	place, c := pl.OptimalPlacement()
	if len(place) != 25 || c <= 0 {
		t.Error("large instance should fall back to the rank heuristic")
	}
}
