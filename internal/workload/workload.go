// Package workload builds the synthetic schemas and datasets used by tests,
// examples and the experiment harness: the Emp/Dept schema from the paper's
// own examples, a star (OLAP) schema for §4.1.1's decision-support claims,
// and chain-join schemas for enumeration experiments. Data generators use
// seeded PRNGs so every experiment is reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/stats"
	"repro/internal/storage"
)

// DB bundles a catalog and a store.
type DB struct {
	Cat   *catalog.Catalog
	Store *storage.Store
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{Cat: catalog.New(), Store: storage.NewStore()}
}

// Analyze collects statistics on every table.
func (db *DB) Analyze(opts stats.AnalyzeOptions) {
	stats.AnalyzeAll(db.Store, db.Cat, opts)
}

// MustAddTable registers a table and creates storage, panicking on error
// (generator bugs are programming errors).
func (db *DB) MustAddTable(t *catalog.Table) *storage.Table {
	if err := db.Cat.AddTable(t); err != nil {
		panic(err)
	}
	st, err := db.Store.CreateTable(t)
	if err != nil {
		panic(err)
	}
	return st
}

// EmpDeptConfig sizes the paper's Emp/Dept schema.
type EmpDeptConfig struct {
	Emps  int
	Depts int
	Seed  int64
}

// EmpDept builds the schema of the paper's running examples:
//
//	Emp(eid, name, did, sal, age, dname_ref)  with indexes on eid (clustered) and did
//	Dept(did, dname, loc, budget, mgr, num_machines)  with index on did
//
// Emp.did is a foreign key into Dept; Dept.mgr references Emp.eid.
func EmpDept(cfg EmpDeptConfig) *DB {
	if cfg.Emps == 0 {
		cfg.Emps = 10000
	}
	if cfg.Depts == 0 {
		cfg.Depts = 100
	}
	db := NewDB()
	emp := &catalog.Table{
		Name: "Emp",
		Cols: []catalog.Column{
			{Name: "eid", Kind: datum.KindInt, NotNull: true},
			{Name: "name", Kind: datum.KindString},
			{Name: "did", Kind: datum.KindInt},
			{Name: "sal", Kind: datum.KindFloat},
			{Name: "age", Kind: datum.KindInt},
			{Name: "dname_ref", Kind: datum.KindString},
		},
		PrimaryKey: []int{0},
		Indexes: []*catalog.Index{
			{Name: "emp_eid", Cols: []int{0}, Unique: true, Clustered: true},
			{Name: "emp_did", Cols: []int{2}},
		},
	}
	dept := &catalog.Table{
		Name: "Dept",
		Cols: []catalog.Column{
			{Name: "did", Kind: datum.KindInt, NotNull: true},
			{Name: "dname", Kind: datum.KindString},
			{Name: "loc", Kind: datum.KindString},
			{Name: "budget", Kind: datum.KindFloat},
			{Name: "mgr", Kind: datum.KindInt},
			{Name: "num_machines", Kind: datum.KindInt},
		},
		PrimaryKey: []int{0},
		Indexes: []*catalog.Index{
			{Name: "dept_did", Cols: []int{0}, Unique: true, Clustered: true},
		},
	}
	et := db.MustAddTable(emp)
	dt := db.MustAddTable(dept)

	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	locs := []string{"Denver", "Seattle", "Austin", "Boston", "Chicago"}
	for d := 0; d < cfg.Depts; d++ {
		if err := dt.Insert(datum.Row{
			datum.NewInt(int64(d)),
			datum.NewString(fmt.Sprintf("dept%03d", d)),
			datum.NewString(locs[rng.Intn(len(locs))]),
			datum.NewFloat(float64(50 + rng.Intn(950))),
			datum.NewInt(int64(rng.Intn(cfg.Emps))),
			datum.NewInt(int64(1 + rng.Intn(50))),
		}); err != nil {
			panic(err)
		}
	}
	for e := 0; e < cfg.Emps; e++ {
		did := datum.NewInt(int64(rng.Intn(cfg.Depts)))
		if rng.Intn(100) == 0 {
			did = datum.Null
		}
		if err := et.Insert(datum.Row{
			datum.NewInt(int64(e)),
			datum.NewString(fmt.Sprintf("emp%05d", e)),
			did,
			datum.NewFloat(float64(20000+rng.Intn(180000)) / 10),
			datum.NewInt(int64(20 + rng.Intn(45))),
			datum.NewString(fmt.Sprintf("dept%03d", rng.Intn(cfg.Depts))),
		}); err != nil {
			panic(err)
		}
	}
	return db
}

// StarConfig sizes the star schema.
type StarConfig struct {
	FactRows int
	DimRows  []int // one entry per dimension table
	Seed     int64
	// Skew applies Zipfian skew to fact foreign keys when > 1.
	Skew float64
}

// Star builds a decision-support star schema (§4.1.1): one fact table
// sales(k1..kn, qty, amount) and n dimension tables dim_i(k, attr, filt).
func Star(cfg StarConfig) *DB {
	if cfg.FactRows == 0 {
		cfg.FactRows = 50000
	}
	if len(cfg.DimRows) == 0 {
		cfg.DimRows = []int{100, 100, 100}
	}
	db := NewDB()
	n := len(cfg.DimRows)

	factCols := make([]catalog.Column, 0, n+2)
	for i := 0; i < n; i++ {
		factCols = append(factCols, catalog.Column{Name: fmt.Sprintf("k%d", i+1), Kind: datum.KindInt})
	}
	factCols = append(factCols,
		catalog.Column{Name: "qty", Kind: datum.KindInt},
		catalog.Column{Name: "amount", Kind: datum.KindFloat},
	)
	var factIdx []*catalog.Index
	for i := 0; i < n; i++ {
		factIdx = append(factIdx, &catalog.Index{Name: fmt.Sprintf("sales_k%d", i+1), Cols: []int{i}})
	}
	// A composite key index makes Cartesian products of dimension tables
	// attractive (§4.1.1): the product's (k1..kn) combinations probe the
	// fact table directly.
	if n >= 2 {
		allKeys := make([]int, n)
		for i := range allKeys {
			allKeys[i] = i
		}
		factIdx = append(factIdx, &catalog.Index{Name: "sales_all_keys", Cols: allKeys})
	}
	fact := &catalog.Table{Name: "sales", Cols: factCols, Indexes: factIdx}
	ft := db.MustAddTable(fact)

	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	dimTabs := make([]*storage.Table, n)
	for i := 0; i < n; i++ {
		dim := &catalog.Table{
			Name: fmt.Sprintf("dim%d", i+1),
			Cols: []catalog.Column{
				{Name: "k", Kind: datum.KindInt, NotNull: true},
				{Name: "attr", Kind: datum.KindString},
				{Name: "filt", Kind: datum.KindInt},
			},
			PrimaryKey: []int{0},
			Indexes: []*catalog.Index{
				{Name: fmt.Sprintf("dim%d_k", i+1), Cols: []int{0}, Unique: true, Clustered: true},
			},
		}
		dimTabs[i] = db.MustAddTable(dim)
		for r := 0; r < cfg.DimRows[i]; r++ {
			if err := dimTabs[i].Insert(datum.Row{
				datum.NewInt(int64(r)),
				datum.NewString(fmt.Sprintf("d%d_%04d", i+1, r)),
				datum.NewInt(int64(rng.Intn(10))),
			}); err != nil {
				panic(err)
			}
		}
	}

	var zipfs []*rand.Zipf
	if cfg.Skew > 1 {
		for i := 0; i < n; i++ {
			zipfs = append(zipfs, rand.NewZipf(rng, cfg.Skew, 1, uint64(cfg.DimRows[i]-1)))
		}
	}
	for r := 0; r < cfg.FactRows; r++ {
		row := make(datum.Row, 0, n+2)
		for i := 0; i < n; i++ {
			var k int64
			if zipfs != nil {
				k = int64(zipfs[i].Uint64())
			} else {
				k = int64(rng.Intn(cfg.DimRows[i]))
			}
			row = append(row, datum.NewInt(k))
		}
		row = append(row, datum.NewInt(int64(1+rng.Intn(20))), datum.NewFloat(float64(rng.Intn(100000))/100))
		if err := ft.Insert(row); err != nil {
			panic(err)
		}
	}
	return db
}

// ChainConfig sizes a chain-join schema R1 -> R2 -> ... -> Rn.
type ChainConfig struct {
	Tables  int
	RowsPer []int // rows per table; defaults to 1000 each
	Seed    int64
}

// Chain builds n tables r1..rn where r_i(pk, fk, payload) and r_i.fk
// references r_{i+1}.pk, producing a chain query graph.
func Chain(cfg ChainConfig) *DB {
	if cfg.Tables == 0 {
		cfg.Tables = 4
	}
	db := NewDB()
	rng := rand.New(rand.NewSource(cfg.Seed + 29))
	rows := func(i int) int {
		if i < len(cfg.RowsPer) {
			return cfg.RowsPer[i]
		}
		return 1000
	}
	for i := 0; i < cfg.Tables; i++ {
		t := &catalog.Table{
			Name: fmt.Sprintf("r%d", i+1),
			Cols: []catalog.Column{
				{Name: "pk", Kind: datum.KindInt, NotNull: true},
				{Name: "fk", Kind: datum.KindInt},
				{Name: "payload", Kind: datum.KindInt},
			},
			PrimaryKey: []int{0},
			Indexes: []*catalog.Index{
				{Name: fmt.Sprintf("r%d_pk", i+1), Cols: []int{0}, Unique: true, Clustered: true},
				{Name: fmt.Sprintf("r%d_fk", i+1), Cols: []int{1}},
			},
		}
		st := db.MustAddTable(t)
		nextRows := rows(i + 1)
		if i == cfg.Tables-1 {
			nextRows = 1
		}
		for r := 0; r < rows(i); r++ {
			if err := st.Insert(datum.Row{
				datum.NewInt(int64(r)),
				datum.NewInt(int64(rng.Intn(nextRows))),
				datum.NewInt(int64(rng.Intn(1000))),
			}); err != nil {
				panic(err)
			}
		}
	}
	return db
}

// ChainQuery returns the SQL text joining the chain's n tables.
func ChainQuery(n int) string {
	q := "SELECT r1.payload FROM "
	for i := 1; i <= n; i++ {
		if i > 1 {
			q += ", "
		}
		q += fmt.Sprintf("r%d", i)
	}
	q += " WHERE "
	for i := 1; i < n; i++ {
		if i > 1 {
			q += " AND "
		}
		q += fmt.Sprintf("r%d.fk = r%d.pk", i, i+1)
	}
	return q
}

// StarQuery returns the SQL joining the fact table with n dimensions,
// filtering each dimension to filtFrac of its rows via filt < k.
func StarQuery(n int, filtMax int) string {
	q := "SELECT "
	for i := 1; i <= n; i++ {
		if i > 1 {
			q += ", "
		}
		q += fmt.Sprintf("dim%d.attr", i)
	}
	q += ", SUM(sales.amount) FROM sales"
	for i := 1; i <= n; i++ {
		q += fmt.Sprintf(", dim%d", i)
	}
	q += " WHERE "
	for i := 1; i <= n; i++ {
		if i > 1 {
			q += " AND "
		}
		q += fmt.Sprintf("sales.k%d = dim%d.k", i, i)
	}
	if filtMax > 0 {
		for i := 1; i <= n; i++ {
			q += fmt.Sprintf(" AND dim%d.filt < %d", i, filtMax)
		}
	}
	q += " GROUP BY "
	for i := 1; i <= n; i++ {
		if i > 1 {
			q += ", "
		}
		q += fmt.Sprintf("dim%d.attr", i)
	}
	return q
}
