package workload

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/datum"
	"repro/internal/stats"
	"repro/internal/storage"
)

func mustRows(t *testing.T, tab *storage.Table) []datum.Row {
	t.Helper()
	rows, err := tab.Rows(nil)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func mustRow(t *testing.T, tab *storage.Table, id int) datum.Row {
	t.Helper()
	r, err := tab.Row(nil, id)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestEmpDeptShape(t *testing.T) {
	db := EmpDept(EmpDeptConfig{Emps: 500, Depts: 25, Seed: 1})
	emp, ok := db.Cat.Table("Emp")
	if !ok {
		t.Fatal("Emp missing")
	}
	if len(emp.Cols) != 6 || emp.ClusteredIndex() == nil {
		t.Error("Emp schema wrong")
	}
	et, _ := db.Store.Table("emp")
	if et.RowCount() != 500 {
		t.Errorf("emp rows = %d", et.RowCount())
	}
	dt, _ := db.Store.Table("dept")
	if dt.RowCount() != 25 {
		t.Errorf("dept rows = %d", dt.RowCount())
	}
	// FK integrity: every non-NULL did must reference an existing dept.
	for _, r := range mustRows(t, et) {
		if r[2].IsNull() {
			continue
		}
		if d := r[2].Int(); d < 0 || d >= 25 {
			t.Fatalf("dangling did %d", d)
		}
	}
	db.Analyze(stats.AnalyzeOptions{})
	if emp.Stats.RowCount != 500 {
		t.Error("analyze did not populate stats")
	}
}

func TestEmpDeptDefaults(t *testing.T) {
	db := EmpDept(EmpDeptConfig{})
	et, _ := db.Store.Table("emp")
	if et.RowCount() != 10000 {
		t.Errorf("default emps = %d", et.RowCount())
	}
}

func TestEmpDeptDeterministic(t *testing.T) {
	a := EmpDept(EmpDeptConfig{Emps: 50, Depts: 5, Seed: 9})
	b := EmpDept(EmpDeptConfig{Emps: 50, Depts: 5, Seed: 9})
	at, _ := a.Store.Table("emp")
	bt, _ := b.Store.Table("emp")
	for i := 0; i < 50; i++ {
		if mustRow(t, at, i).String() != mustRow(t, bt, i).String() {
			t.Fatalf("row %d differs across identical seeds", i)
		}
	}
}

func TestStarShape(t *testing.T) {
	db := Star(StarConfig{FactRows: 1000, DimRows: []int{10, 20}, Seed: 2})
	fact, ok := db.Cat.Table("sales")
	if !ok {
		t.Fatal("sales missing")
	}
	// k1, k2, qty, amount.
	if len(fact.Cols) != 4 {
		t.Errorf("fact cols = %d", len(fact.Cols))
	}
	// Per-key indexes plus the composite index.
	if len(fact.Indexes) != 3 {
		t.Errorf("fact indexes = %d, want 3", len(fact.Indexes))
	}
	ft, _ := db.Store.Table("sales")
	for _, r := range mustRows(t, ft) {
		if k := r[0].Int(); k < 0 || k >= 10 {
			t.Fatalf("k1 out of range: %d", k)
		}
		if k := r[1].Int(); k < 0 || k >= 20 {
			t.Fatalf("k2 out of range: %d", k)
		}
	}
}

func TestStarSkew(t *testing.T) {
	db := Star(StarConfig{FactRows: 20000, DimRows: []int{100}, Seed: 3, Skew: 1.5})
	ft, _ := db.Store.Table("sales")
	freq := map[int64]int{}
	for _, r := range mustRows(t, ft) {
		freq[r[0].Int()]++
	}
	// Zipfian: key 0 should dominate.
	if freq[0] < 20000/10 {
		t.Errorf("skewed fact should concentrate on key 0, got %d", freq[0])
	}
}

func TestChainAndQueries(t *testing.T) {
	db := Chain(ChainConfig{Tables: 4, Seed: 4})
	for i := 1; i <= 4; i++ {
		tab, ok := db.Store.Table(fmt.Sprintf("r%d", i))
		if !ok {
			t.Fatalf("r%d missing", i)
		}
		if tab.RowCount() != 1000 {
			t.Errorf("r%d rows = %d", i, tab.RowCount())
		}
	}
	q := ChainQuery(4)
	for _, frag := range []string{"FROM r1, r2, r3, r4", "r1.fk = r2.pk", "r3.fk = r4.pk"} {
		if !contains(q, frag) {
			t.Errorf("ChainQuery missing %q: %s", frag, q)
		}
	}
	sq := StarQuery(2, 5)
	for _, frag := range []string{"sales.k1 = dim1.k", "dim2.filt < 5", "GROUP BY"} {
		if !contains(sq, frag) {
			t.Errorf("StarQuery missing %q: %s", frag, sq)
		}
	}
	if contains(StarQuery(1, 0), "filt <") {
		t.Error("filtMax 0 should omit filters")
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
