package queryopt

// parallel_equivalence_test.go extends the equivalence net to the
// morsel-driven parallel executor: for the same random query corpus, engines
// running with Parallelism 1, 2 and 8 must return exactly the multiset the
// serial engine returns — bit-identical floats included (SUM/AVG use exact
// compensated summation, so partitioning must not change a single bit) — and
// the identical row order whenever the query has an ORDER BY. Tables here are
// large enough (thousands of rows) that the
// parallel operators really fan out rather than falling back to the serial
// path below the morsel threshold.

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// exactRow renders one result row with floats in exact hexadecimal form —
// no rounding workaround. Parallel float aggregates use exact compensated
// summation, so every bit must match the serial run.
func exactRow(r []any) string {
	var sb strings.Builder
	for j, v := range r {
		if j > 0 {
			sb.WriteByte('|')
		}
		switch t := v.(type) {
		case nil:
			sb.WriteString("NULL")
		case float64:
			sb.WriteString(strconv.FormatFloat(t, 'x', -1, 64))
		default:
			sb.WriteString(fmt.Sprint(t))
		}
	}
	return sb.String()
}

// exactRows is the multiset form: exact rows, sorted.
func exactRows(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = exactRow(r)
	}
	sort.Strings(out)
	return out
}

// bigRandSchema is randSchema scaled past the morsel threshold (~2k rows).
func bigRandSchema(t *testing.T, opts Options, seed int64) *Engine {
	t.Helper()
	e := New(opts)
	t.Cleanup(e.Close)
	e.MustExec(`CREATE TABLE r (pk INT NOT NULL, fk INT, a INT, s VARCHAR, f FLOAT, PRIMARY KEY (pk))`)
	e.MustExec(`CREATE TABLE t (pk INT NOT NULL, fk INT, a INT, s VARCHAR, f FLOAT, PRIMARY KEY (pk))`)
	e.MustExec(`CREATE TABLE u (pk INT NOT NULL, a INT, s VARCHAR, PRIMARY KEY (pk))`)
	e.MustExec(`CREATE INDEX r_fk ON r (fk)`)
	e.MustExec(`CREATE INDEX t_a ON t (a)`)
	rng := rand.New(rand.NewSource(seed))
	strs := []string{"ant", "bee", "cat", "dog", "elk"}
	load := func(table string, n, fkDom int, withFK bool) {
		var rows [][]any
		for i := 0; i < n; i++ {
			row := []any{i}
			if withFK {
				if rng.Intn(10) == 0 {
					row = append(row, nil)
				} else {
					row = append(row, rng.Intn(fkDom))
				}
			}
			if rng.Intn(12) == 0 {
				row = append(row, nil)
			} else {
				row = append(row, rng.Intn(20))
			}
			row = append(row, strs[rng.Intn(len(strs))])
			if table != "u" {
				if rng.Intn(12) == 0 {
					row = append(row, nil)
				} else {
					row = append(row, float64(rng.Intn(1000))/4)
				}
			}
			rows = append(rows, row)
		}
		if err := e.LoadRows(table, rows); err != nil {
			t.Fatal(err)
		}
	}
	load("r", 5000, 2000, true)
	load("t", 2000, 400, true)
	load("u", 400, 0, false)
	e.MustExec("ANALYZE")
	return e
}

// TestParallelQueryEquivalence: same corpus as TestRandomQueryEquivalence,
// baselined on the serial SystemR engine (serial-vs-reference equivalence is
// already covered there).
func TestParallelQueryEquivalence(t *testing.T) {
	const trials = 25
	degrees := []int{1, 2, 8}
	for seed := int64(1); seed <= 2; seed++ {
		serial := bigRandSchema(t, Options{Optimizer: SystemR}, seed)
		engines := make([]*Engine, len(degrees))
		for i, d := range degrees {
			engines[i] = bigRandSchema(t, Options{Optimizer: SystemR, Parallelism: d}, seed)
		}
		rng := rand.New(rand.NewSource(seed * 1000))
		for trial := 0; trial < trials; trial++ {
			q := randQuery(rng)
			res, err := serial.Exec(q)
			if err != nil {
				t.Fatalf("seed %d trial %d serial: %v\nquery: %s", seed, trial, err, q)
			}
			baseline := exactRows(res)
			ordered := strings.Contains(q, "ORDER BY")
			var orderedBaseline []string
			if ordered {
				for _, r := range res.Rows {
					orderedBaseline = append(orderedBaseline, exactRow(r))
				}
			}
			for i, d := range degrees {
				pres, err := engines[i].Exec(q)
				if err != nil {
					t.Fatalf("seed %d trial %d degree %d: %v\nquery: %s", seed, trial, d, err, q)
				}
				got := exactRows(pres)
				if strings.Join(got, ";") != strings.Join(baseline, ";") {
					t.Fatalf("seed %d trial %d: degree %d disagrees with serial\nquery: %s\nserial (%d rows): %.500v\ngot    (%d rows): %.500v\nplan:\n%s",
						seed, trial, d, q, len(baseline), baseline, len(got), got, pres.Plan)
				}
				if ordered {
					var rows []string
					for _, r := range pres.Rows {
						rows = append(rows, exactRow(r))
					}
					if strings.Join(rows, ";") != strings.Join(orderedBaseline, ";") {
						t.Fatalf("seed %d trial %d: degree %d row order differs under ORDER BY\nquery: %s\nplan:\n%s",
							seed, trial, d, q, pres.Plan)
					}
				}
			}
		}
	}
}

// TestParallelAllNullAggregates: groups whose aggregate input is entirely
// NULL must come out the same from the serial and every parallel path —
// SUM/AVG/MIN/MAX NULL, COUNT(x) 0, COUNT(*) the group size. The table is
// large enough (4096 rows) that parallel runs really take the morsel path.
func TestParallelAllNullAggregates(t *testing.T) {
	build := func(par int) *Engine {
		e := New(Options{Parallelism: par})
		t.Cleanup(e.Close)
		e.MustExec(`CREATE TABLE m (pk INT NOT NULL, g INT, v FLOAT, PRIMARY KEY (pk))`)
		var rows [][]any
		for i := 0; i < 4096; i++ {
			g := i % 8
			// Groups 0-3 are entirely NULL in v; 4-7 mix NULLs and values.
			var v any
			if g >= 4 && i%3 == 0 {
				v = float64(i%97) + 0.25
			}
			rows = append(rows, []any{i, g, v})
		}
		if err := e.LoadRows("m", rows); err != nil {
			t.Fatal(err)
		}
		e.MustExec("ANALYZE")
		return e
	}
	q := `SELECT g, COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) FROM m GROUP BY g ORDER BY g`
	serial := build(1)
	sres, err := serial.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity on the serial truth itself: all-NULL groups 0-3.
	for _, r := range sres.Rows {
		if g := r[0].(int64); g < 4 {
			if r[1].(int64) != 512 || r[2].(int64) != 0 {
				t.Fatalf("group %d counts wrong: %v", g, r)
			}
			for c := 3; c <= 6; c++ {
				if r[c] != nil {
					t.Fatalf("group %d column %d = %v, want NULL", g, c, r[c])
				}
			}
		}
	}
	for _, par := range []int{2, 4, 8} {
		pres, err := build(par).Exec(q)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(pres.Rows) != len(sres.Rows) {
			t.Fatalf("parallelism %d: %d rows, serial has %d", par, len(pres.Rows), len(sres.Rows))
		}
		for i := range sres.Rows {
			if exactRow(pres.Rows[i]) != exactRow(sres.Rows[i]) {
				t.Errorf("parallelism %d row %d: got %v, serial %v", par, i, pres.Rows[i], sres.Rows[i])
			}
		}
	}
}

// TestParallelExplainShowsExchanges: parallel engines plan Exchange operators
// that show up in EXPLAIN output.
func TestParallelExplainShowsExchanges(t *testing.T) {
	e := bigRandSchema(t, Options{Optimizer: SystemR, Parallelism: 4}, 7)
	plan, err := e.Explain("SELECT x.a, COUNT(*), SUM(x.f) FROM r x GROUP BY x.a")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "exchange") {
		t.Errorf("parallel EXPLAIN lacks Exchange operators:\n%s", plan)
	}
}
