// Package queryopt is an embedded relational engine whose optimizer
// reproduces "An Overview of Query Optimization in Relational Systems"
// (Chaudhuri, PODS 1998): System-R dynamic programming with interesting
// orders, a Starburst-style rewrite phase over a QGM, a Volcano/Cascades
// memo optimizer, histogram-based statistics, the major algebraic
// transformations (subquery unnesting, eager aggregation, magic semijoins,
// outerjoin reordering), materialized-view answering, expensive-predicate
// placement and two-phase parallel optimization.
//
// Quick start:
//
//	eng := queryopt.New(queryopt.Options{})
//	eng.MustExec(`CREATE TABLE emp (eid INT NOT NULL, name VARCHAR, did INT, sal FLOAT)`)
//	eng.MustExec(`INSERT INTO emp VALUES (1, 'alice', 10, 120.5)`)
//	eng.MustExec(`ANALYZE emp`)
//	res, err := eng.Exec(`SELECT name FROM emp WHERE sal > 100`)
package queryopt

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/datum"
	"repro/internal/exec"
	"repro/internal/faultfs"
	"repro/internal/logical"
	"repro/internal/matview"
	"repro/internal/parallel"
	"repro/internal/physical"
	"repro/internal/plancache"
	"repro/internal/qgm"
	"repro/internal/rewrite"
	"repro/internal/sql"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/systemr"

	cascadesopt "repro/internal/cascades"
)

// OptimizerKind selects the enumeration architecture (§3 / §6).
type OptimizerKind uint8

// Optimizer architectures.
const (
	// SystemR: bottom-up dynamic programming with interesting orders (§3).
	SystemR OptimizerKind = iota
	// Starburst: QGM rewrite phase, then bottom-up plan optimization (§6.1).
	Starburst
	// Cascades: single-phase top-down memo search (§6.2).
	Cascades
	// Reference executes the normalized logical tree directly with the
	// naive evaluator (no optimization) — the correctness baseline.
	Reference
)

func (k OptimizerKind) String() string {
	switch k {
	case SystemR:
		return "system-r"
	case Starburst:
		return "starburst"
	case Cascades:
		return "cascades"
	case Reference:
		return "reference"
	}
	return "?"
}

// Options configures an Engine.
type Options struct {
	Optimizer OptimizerKind
	// DisableRewrites turns off the §4 transformations (unnesting etc.) for
	// SystemR/Cascades runs; Starburst always runs its rewrite phase.
	DisableRewrites bool
	// UseMaterializedViews enables transparent view answering (§7.3).
	UseMaterializedViews bool
	// SystemR tunes the DP search space when Optimizer is SystemR/Starburst.
	SystemR systemr.Options
	// Cascades tunes the memo search when Optimizer is Cascades.
	Cascades cascadesopt.Options
	// Cost overrides the cost model (zero value = DefaultModel).
	Cost *cost.Model
	// Analyze configures statistics collection for ANALYZE statements.
	Analyze stats.AnalyzeOptions
	// Parallelism > 1 runs queries on the morsel-driven parallel executor
	// (§7.1): optimized plans pass through parallel.Parallelize so Exchange
	// operators are planned, and execute on a shared worker pool of this
	// degree. 0 or 1 keeps execution serial. Engines used with parallelism
	// should be Closed to release the pool.
	Parallelism int
	// FeedbackCapacity sizes the ring buffer of (plan node, estimated rows,
	// actual rows) observations recorded by analyzed executions (EXPLAIN
	// ANALYZE / QueryAnalyze). 0 selects the default of 1024 entries.
	FeedbackCapacity int
	// MemBudget caps each query's working memory (hash-join builds,
	// hash-aggregation tables, sort buffers) in modeled bytes. Operators that
	// exceed it degrade gracefully — external-merge sort, grace hash join,
	// partitioned aggregation spill to temp files — and produce bit-identical
	// results; a query that cannot fit even one spill partition fails with an
	// error matching ErrMemoryBudgetExceeded. 0 means unlimited.
	MemBudget int64
	// TempDir is where spill files are created (empty = os.TempDir()).
	TempDir string
	// Vectorize selects the columnar batch execution path. The default
	// (VectorizeAuto) runs operators with typed kernels over column vectors
	// and falls back to the row engine for the rest; VectorizeOff forces row
	// execution everywhere. Results are identical either way.
	Vectorize VectorizeMode
	// TotalMemBudget caps the working memory of all concurrently running
	// queries combined, in modeled bytes: each query's account (capped at
	// MemBudget) additionally charges this shared pool, so admission-level
	// concurrency cannot multiply MemBudget unchecked. 0 means unlimited.
	TotalMemBudget int64
	// MaxConcurrentQueries bounds how many SELECTs may run at once; excess
	// callers queue at admission. 0 means unbounded.
	MaxConcurrentQueries int
	// AdmissionTimeout bounds how long a query waits at admission before
	// failing with ErrAdmissionTimeout. 0 means wait indefinitely (or until
	// the caller's context is done).
	AdmissionTimeout time.Duration
	// PlanCacheSize bounds the prepared-statement plan cache (entries are
	// normalized statement text + parameter-type signature). 0 selects the
	// default of 128; negative disables the cache, so every Stmt execution
	// re-optimizes at its bindings.
	PlanCacheSize int
	// GreedyJoinThreshold enables the adaptive greedy fast path: join blocks
	// of up to this many relations are ordered by the O(k²) greedy heuristic
	// instead of System-R dynamic programming, trading a possibly worse join
	// order for much cheaper planning on short statements. Result.PlannerTier
	// and EXPLAIN record which tier planned each query. 0 disables (DP runs
	// for every block within SystemR.MaxRelations).
	GreedyJoinThreshold int
	// GreedyCostThreshold > 0 makes every join block try the greedy order
	// first and keep it when its estimated cost is at or below the threshold;
	// costlier blocks fall through to full DP. Complements
	// GreedyJoinThreshold: one gates on block width, the other on how much
	// execution is estimated to be at stake.
	GreedyCostThreshold float64
	// FeedbackPatching promotes analyzed-execution observations (EXPLAIN
	// ANALYZE / QueryAnalyze) into per-(table, predicate) cardinality
	// overrides the estimator consults before histogram estimates, closing
	// §5's statistics loop with runtime truth. A materially changed override
	// bumps the catalog version so stale cached plans re-optimize. Overrides
	// only ever change estimates — plan choice, never results.
	FeedbackPatching bool
	// ReplanQErrorThreshold > 1 arms the re-optimization trigger: when an
	// analyzed execution's worst per-node q-error exceeds the threshold, the
	// next execution of that statement family re-optimizes instead of
	// dispatching from the plan-cache diagram.
	ReplanQErrorThreshold float64
	// IncrementalStats maintains statistics incrementally on INSERT/LoadRows
	// (row and null counts, histogram insertions via incremental
	// widen/split/merge maintenance) instead of leaving them frozen until the
	// next ANALYZE. Default off: plans then see exactly the statistics the
	// last ANALYZE built.
	IncrementalStats bool
	// StorageDir, when non-empty, makes tables disk-backed: rows seal into
	// persistent columnar segment files (typed column blocks with min/max
	// zone maps, NULL counts and distinct sketches per column) under
	// StorageDir/<table>/, scans eliminate segments their predicates cannot
	// match without touching disk, and segment metadata serves as coarse
	// statistics when ANALYZE-built stats are missing or stale. Empty (the
	// default) keeps the historical in-memory heap.
	StorageDir string
	// SegmentRows is the sealed-segment row count in disk-backed mode
	// (default 4096 — a multiple of the executor's morsel size, so morsels
	// never straddle segments).
	SegmentRows int
	// SegmentCacheBytes bounds the decoded-column cache in disk-backed mode
	// (default 64 MiB). Tests set it tiny to force every read cold.
	SegmentCacheBytes int64
	// DisableZoneMaps turns off zone-map segment elimination and pruned-page
	// costing in disk-backed mode: every segment is read and filtered. The
	// control arm of the storage benchmarks.
	DisableZoneMaps bool
	// IORetries is how many times a transient storage fault (one matching
	// faultfs.ErrTransient) is retried before the error propagates to the
	// query. 0 (the default) disables retries; permanent faults are never
	// retried.
	IORetries int
	// IORetryBackoff is the sleep before the first transient-fault retry,
	// doubling on each further attempt.
	IORetryBackoff time.Duration
	// DisableChecksums skips CRC32C verification when segment column blocks
	// are decoded. Writes still record checksums; this is the benchmark
	// control arm for measuring verification overhead and an escape hatch
	// for salvaging data from a damaged directory.
	DisableChecksums bool
	// DisableCompression seals every new segment with plain column blocks,
	// skipping the dictionary and run-length encoders — the A/B control arm
	// of the compression benchmarks. Seal-time only: already-sealed
	// compressed segments still read fine either way.
	DisableCompression bool
}

// VectorizeMode selects between the columnar batch path and pure row
// execution.
type VectorizeMode uint8

const (
	// VectorizeAuto (the default) vectorizes operators whose predicates,
	// projections and aggregates all have typed kernels.
	VectorizeAuto VectorizeMode = iota
	// VectorizeOff forces row-at-a-time execution.
	VectorizeOff
)

// ErrMemoryBudgetExceeded is returned (wrapped, match with errors.Is) by
// queries whose working memory cannot fit Options.MemBudget even after
// spilling to disk.
var ErrMemoryBudgetExceeded = exec.ErrMemoryBudgetExceeded

// ErrAdmissionTimeout is returned by queries that waited longer than
// Options.AdmissionTimeout for an execution slot; match with errors.Is.
var ErrAdmissionTimeout = errors.New("queryopt: admission queue timeout")

// ErrPoolClosed is returned (wrapped, match with errors.Is) by parallel
// queries that raced Engine.Close: in-flight work drains, late submissions
// get this typed error.
var ErrPoolClosed = exec.ErrPoolClosed

// Engine is an embedded single-process database engine. Exec, QueryAnalyze
// and prepared-statement execution are safe for concurrent use from many
// goroutines: reads (SELECTs) share the engine, catalog-mutating statements
// (CREATE/INSERT/ANALYZE) serialize against them, parallel executions share
// one worker pool, and per-query memory accounts draw on the shared
// TotalMemBudget pool.
type Engine struct {
	opts  Options
	cat   *catalog.Catalog
	store *storage.Store
	udfs  []udf
	// pool is the worker pool shared by all parallel query executions of
	// this engine; created by New when Parallelism > 1, released by Close.
	pool *exec.Pool
	// feedback retains estimate-vs-actual observations from analyzed
	// executions — the execution-feedback substrate (§5's statistics loop
	// closed with runtime truth).
	feedback *physical.FeedbackRing
	// faults injects errors/latency into scan batches and spill I/O of every
	// query this engine runs — the fault harness the robustness tests drive.
	faults *faultfs.Injector

	// mu is the catalog latch: SELECTs hold it shared for their whole
	// build-optimize-execute span, statements that mutate catalog or data
	// (CREATE, INSERT, ANALYZE) hold it exclusive. Plans never observe a
	// half-applied DDL.
	mu sync.RWMutex
	// catVersion counts catalog shape and statistics changes (DDL, ANALYZE,
	// and materially changed feedback overrides — not INSERT, which leaves
	// cached plans correct, only possibly stale in quality until the next
	// ANALYZE). Cached plan diagrams remember the version they were built
	// under and re-optimize when it moves.
	catVersion atomic.Uint64
	// admitCh is the admission semaphore (nil = unbounded).
	admitCh chan struct{}
	// totalMem is the shared memory pool parented by every query account
	// (nil = unlimited).
	totalMem *exec.MemAccount
	// plans is the prepared-statement plan cache (nil = disabled); hit/miss
	// accounting at plan granularity is in cacheHits/cacheMisses.
	plans                 *plancache.Cache
	cacheHits, cacheMisses atomic.Int64

	// overrides holds feedback-patched cardinalities harvested from analyzed
	// executions (nil unless Options.FeedbackPatching).
	overrides *stats.Overrides
	// replanMu guards replan: statement fingerprints marked by the q-error
	// trigger for forced re-optimization, consumed by the next execution.
	replanMu sync.Mutex
	replan   map[string]struct{}
}

type udf struct {
	name string
	cost float64
	sel  float64
	fn   func([]datum.D) bool
}

// New returns an empty engine.
func New(opts Options) *Engine {
	if opts.SystemR.MaxRelations == 0 {
		opts.SystemR = systemr.DefaultOptions()
	}
	if opts.Cascades.MaxExprs == 0 {
		opts.Cascades = cascadesopt.DefaultOptions()
	}
	if opts.FeedbackCapacity == 0 {
		opts.FeedbackCapacity = 1024
	}
	// The adaptive greedy fast path lives in the System-R enumerator; the
	// engine-level knobs map onto its options.
	if opts.GreedyJoinThreshold > 0 {
		opts.SystemR.GreedyThreshold = opts.GreedyJoinThreshold
	}
	if opts.GreedyCostThreshold > 0 {
		opts.SystemR.GreedyCostThreshold = opts.GreedyCostThreshold
	}
	eng := &Engine{
		opts: opts,
		cat:  catalog.New(),
		store: storage.NewStoreWith(storage.StoreConfig{
			Dir:              opts.StorageDir,
			SegmentRows:      opts.SegmentRows,
			CacheBytes:       opts.SegmentCacheBytes,
			IORetries:        opts.IORetries,
			IORetryBackoff:   opts.IORetryBackoff,
			DisableChecksums:   opts.DisableChecksums,
			DisableCompression: opts.DisableCompression,
		}),
		feedback: physical.NewFeedbackRing(opts.FeedbackCapacity),
		replan:   make(map[string]struct{}),
	}
	if opts.FeedbackPatching {
		eng.overrides = stats.NewOverrides()
	}
	// The pool is created eagerly: lazy creation from concurrent first
	// queries would race, and an eager pool makes Close's drain guarantee
	// unconditional.
	if opts.Parallelism > 1 {
		eng.pool = exec.NewPool(opts.Parallelism)
	}
	if opts.MaxConcurrentQueries > 0 {
		eng.admitCh = make(chan struct{}, opts.MaxConcurrentQueries)
	}
	if opts.TotalMemBudget > 0 {
		eng.totalMem = exec.NewMemAccount(opts.TotalMemBudget)
	}
	if opts.PlanCacheSize >= 0 {
		size := opts.PlanCacheSize
		if size == 0 {
			size = 128
		}
		eng.plans = plancache.New(size)
	}
	return eng
}

// Close releases the engine's parallel worker pool, if one was created.
// In-flight parallel queries drain before Close returns; queries submitted
// after Close fail with an error matching ErrPoolClosed. Engines that never
// executed with Parallelism > 1 need not call it.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.Close()
	}
}

// admit claims an execution slot, waiting up to AdmissionTimeout (and no
// longer than the context allows). The returned release must be called when
// the query finishes.
func (e *Engine) admit(ctx context.Context) (release func(), err error) {
	if e.admitCh == nil {
		return func() {}, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case e.admitCh <- struct{}{}:
		return func() { <-e.admitCh }, nil
	default:
	}
	var timeout <-chan time.Time
	if e.opts.AdmissionTimeout > 0 {
		t := time.NewTimer(e.opts.AdmissionTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case e.admitCh <- struct{}{}:
		return func() { <-e.admitCh }, nil
	case <-timeout:
		return nil, fmt.Errorf("%w (waited %v for a slot, %d running)",
			ErrAdmissionTimeout, e.opts.AdmissionTimeout, e.opts.MaxConcurrentQueries)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Result is a query result: column names and rows of native Go values
// (int64, float64, string, bool, or nil for NULL).
type Result struct {
	Columns []string
	Rows    [][]any
	// Plan is the executed physical plan rendered as text (empty for DDL
	// and reference-mode execution).
	Plan string
	// EstRows and EstCost are the optimizer's estimates for the plan root.
	EstRows, EstCost float64
	// Stats reports the measured execution counters.
	Stats ExecStats
	// UsedMaterializedView names the view substituted, if any.
	UsedMaterializedView string
	// PlannerTier records which planning tier produced the executed plan:
	// "trivial" (no join ordering needed), "greedy", "greedy-fallback" (block
	// wider than MaxRelations), "dp" for System-R/Starburst; "full" for
	// Cascades; "cached" when a prepared execution dispatched a plan-cache
	// diagram. Empty for DDL and reference mode.
	PlannerTier string
}

// ExecStats are measured execution counters (simulated I/O model).
type ExecStats struct {
	PagesRead     int64
	RowsProcessed int64
	IndexSeeks    int64
	SubqueryEvals int64
	HashOps       int64
	Comparisons   int64
	// Spills counts temp files written by operators that degraded to disk
	// under the memory budget; SpillBytes is their total size.
	Spills     int64
	SpillBytes int64
	// PeakMemBytes is the query's working-memory high-water mark against the
	// memory account (reserved plus observed materialization points).
	PeakMemBytes int64
	// SegmentsRead / SegmentsPruned count disk-backed columnar segments the
	// query's scans read vs eliminated via zone maps; BytesRead is real
	// segment-file bytes read from disk (cache misses only — warm scans read
	// zero). All zero for in-memory engines.
	SegmentsRead   int64
	SegmentsPruned int64
	BytesRead      int64
	// BlocksDict / BlocksRLE / BlocksPlain count column blocks decoded from
	// disk by representation (dictionary, run-length, plain typed/boxed).
	// Cache hits add nothing, same as BytesRead.
	BlocksDict  int64
	BlocksRLE   int64
	BlocksPlain int64
}

// RegisterPredicate registers a user-defined predicate callable from SQL
// (§7.2). Declared cost and selectivity inform the optimizer; fn executes it.
// Arguments arrive as native Go values.
func (e *Engine) RegisterPredicate(name string, perTupleCost, selectivity float64, fn func(args []any) bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.udfs = append(e.udfs, udf{
		name: name, cost: perTupleCost, sel: selectivity,
		fn: func(ds []datum.D) bool {
			args := make([]any, len(ds))
			for i, d := range ds {
				args[i] = toGo(d)
			}
			return fn(args)
		},
	})
}

// Exec parses and executes one SQL statement.
func (e *Engine) Exec(text string) (*Result, error) {
	return e.ExecContext(context.Background(), text)
}

// ExecContext is Exec under a context: cancellation and deadlines propagate
// to every execution goroutine, which observe them at batch boundaries and
// unwind promptly (the error matches context.Canceled or
// context.DeadlineExceeded). Partial metrics collected before the
// cancellation are still merged; no goroutines are leaked.
func (e *Engine) ExecContext(ctx context.Context, text string) (*Result, error) {
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	return e.execStmt(ctx, stmt, false, text)
}

// MustExec is Exec for setup code paths; it panics on error.
func (e *Engine) MustExec(text string) *Result {
	res, err := e.Exec(text)
	if err != nil {
		panic(fmt.Sprintf("queryopt: %s: %v", text, err))
	}
	return res
}

// Explain returns the optimized plan for a SELECT without executing it.
func (e *Engine) Explain(text string) (string, error) {
	res, err := e.Exec("EXPLAIN " + text)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, r := range res.Rows {
		fmt.Fprintln(&sb, r[0])
	}
	return sb.String(), nil
}

// writeStmt runs a catalog- or data-mutating statement under the exclusive
// latch. bumpVersion marks statements that change plan-relevant state (DDL,
// ANALYZE) so cached plan diagrams re-optimize; INSERT leaves cached plans
// correct and does not bump.
func (e *Engine) writeStmt(bumpVersion bool, fn func() (*Result, error)) (*Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	res, err := fn()
	if err == nil && bumpVersion {
		e.catVersion.Add(1)
	}
	return res, err
}

func (e *Engine) execStmt(ctx context.Context, stmt sql.Statement, explain bool, text string) (*Result, error) {
	switch t := stmt.(type) {
	case *sql.CreateTableStmt:
		return e.writeStmt(true, func() (*Result, error) { return e.createTable(t) })
	case *sql.CreateIndexStmt:
		return e.writeStmt(true, func() (*Result, error) { return e.createIndex(t) })
	case *sql.CreateViewStmt:
		return e.writeStmt(true, func() (*Result, error) { return e.createView(t) })
	case *sql.InsertStmt:
		return e.writeStmt(false, func() (*Result, error) { return e.insert(t) })
	case *sql.AnalyzeStmt:
		return e.writeStmt(true, func() (*Result, error) { return e.analyze(t) })
	case *sql.ExplainStmt:
		if t.Analyze {
			sel, ok := t.Stmt.(*sql.SelectStmt)
			if !ok {
				return nil, fmt.Errorf("queryopt: EXPLAIN ANALYZE supports SELECT statements only")
			}
			res, pa, err := e.run(ctx, sel, false, true, text)
			if err != nil {
				return nil, err
			}
			// Like EXPLAIN, the statement's result is the plan — here
			// annotated with the runtime metrics of the completed execution.
			out := &Result{
				Columns: []string{"plan"},
				Plan:    pa.Text,
				EstRows: res.EstRows, EstCost: res.EstCost,
				Stats:                res.Stats,
				UsedMaterializedView: res.UsedMaterializedView,
				PlannerTier:          res.PlannerTier,
			}
			for _, line := range strings.Split(strings.TrimRight(pa.Text, "\n"), "\n") {
				out.Rows = append(out.Rows, []any{line})
			}
			return out, nil
		}
		return e.execStmt(ctx, t.Stmt, true, text)
	case *sql.SelectStmt:
		return e.query(ctx, t, explain, text)
	}
	return nil, fmt.Errorf("queryopt: unsupported statement %T", stmt)
}

func (e *Engine) createTable(t *sql.CreateTableStmt) (*Result, error) {
	def := &catalog.Table{Name: t.Name}
	for _, c := range t.Cols {
		def.Cols = append(def.Cols, catalog.Column{Name: c.Name, Kind: c.Kind, NotNull: c.NotNull})
	}
	for _, pk := range t.PrimaryKey {
		ord := -1
		for i, c := range def.Cols {
			if strings.EqualFold(c.Name, pk) {
				ord = i
			}
		}
		if ord < 0 {
			return nil, fmt.Errorf("queryopt: PRIMARY KEY column %q not found", pk)
		}
		def.PrimaryKey = append(def.PrimaryKey, ord)
		def.Cols[ord].NotNull = true
	}
	if len(def.PrimaryKey) > 0 {
		def.Indexes = append(def.Indexes, &catalog.Index{
			Name: strings.ToLower(t.Name) + "_pkey", Cols: def.PrimaryKey,
			Unique: true, Clustered: true,
		})
	}
	if err := e.cat.AddTable(def); err != nil {
		return nil, err
	}
	if _, err := e.store.CreateTable(def); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) createIndex(t *sql.CreateIndexStmt) (*Result, error) {
	def, ok := e.cat.Table(t.Table)
	if !ok {
		return nil, fmt.Errorf("queryopt: unknown table %q", t.Table)
	}
	ix := &catalog.Index{Name: t.Name, Unique: t.Unique, Clustered: t.Clustered}
	for _, c := range t.Cols {
		ord := def.Ordinal(c)
		if ord < 0 {
			return nil, fmt.Errorf("queryopt: unknown column %q in index", c)
		}
		ix.Cols = append(ix.Cols, ord)
	}
	if ix.Clustered && def.ClusteredIndex() != nil {
		return nil, fmt.Errorf("queryopt: table %q already has a clustered index", t.Table)
	}
	def.Indexes = append(def.Indexes, ix)
	if ix.Clustered {
		if tab, ok := e.store.Table(t.Table); ok {
			var spec []datum.SortSpec
			for _, ord := range ix.Cols {
				spec = append(spec, datum.SortSpec{Col: ord})
			}
			if err := tab.SortBy(spec); err != nil {
				return nil, err
			}
		}
	}
	return &Result{}, nil
}

func (e *Engine) createView(t *sql.CreateViewStmt) (*Result, error) {
	if t.Materialized {
		if _, err := matview.Materialize(e.cat, e.store, t.Name, t.SQL); err != nil {
			return nil, err
		}
		return &Result{}, nil
	}
	if err := e.cat.AddView(&catalog.View{Name: t.Name, SQL: t.SQL}); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) insert(t *sql.InsertStmt) (*Result, error) {
	tab, ok := e.store.Table(t.Table)
	if !ok {
		return nil, fmt.Errorf("queryopt: unknown table %q", t.Table)
	}
	rows := make([]datum.Row, 0, len(t.Rows))
	for _, rowExprs := range t.Rows {
		row := make(datum.Row, len(rowExprs))
		for i, expr := range rowExprs {
			// INSERT accepts constant expressions only.
			sc, err := buildConstExpr(expr)
			if err != nil {
				return nil, err
			}
			v, ok := logical.EvalConst(sc)
			if !ok {
				return nil, fmt.Errorf("queryopt: INSERT values must be constants")
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	if err := tab.InsertBatch(rows); err != nil {
		return nil, err
	}
	if e.opts.IncrementalStats {
		for _, row := range rows {
			e.maintainStats(tab.Def, row)
		}
	}
	return &Result{}, nil
}

// buildConstExpr translates a constant AST expression without name
// resolution.
func buildConstExpr(e sql.Expr) (logical.Scalar, error) {
	cat := catalog.New()
	b := logical.NewBuilder(cat)
	sel := &sql.SelectStmt{Select: []sql.SelectItem{{Expr: e}}}
	q, err := b.Build(sel)
	if err != nil {
		return nil, err
	}
	p, ok := q.Root.(*logical.Project)
	if !ok || len(p.Items) != 1 {
		return nil, fmt.Errorf("queryopt: cannot evaluate INSERT expression")
	}
	return p.Items[0].Expr, nil
}

func (e *Engine) analyze(t *sql.AnalyzeStmt) (*Result, error) {
	if t.Table == "" {
		if err := stats.AnalyzeAll(e.store, e.cat, e.opts.Analyze); err != nil {
			return nil, err
		}
		return &Result{}, nil
	}
	tab, ok := e.store.Table(t.Table)
	if !ok {
		return nil, fmt.Errorf("queryopt: unknown table %q", t.Table)
	}
	if err := stats.Analyze(tab, e.opts.Analyze); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// Build compiles a SELECT into a logical query (rewrites applied per the
// engine options). Exposed for tooling and the experiment harness.
func (e *Engine) Build(sel *sql.SelectStmt) (*logical.Query, error) {
	b := logical.NewBuilder(e.cat)
	for _, u := range e.udfs {
		b.RegisterUDP(u.name, u.cost, u.sel, u.fn)
	}
	q, err := b.Build(sel)
	if err != nil {
		return nil, err
	}
	logical.NormalizeQuery(q, logical.DefaultNormalize())
	if !e.opts.DisableRewrites && e.opts.Optimizer != Starburst {
		rewrite.UnnestSubqueries(q)
		rewrite.AssociateJoinOuterjoin(q)
		rewrite.MovePredicates(q)
		rewrite.PushDownGroupBy(q)
		logical.NormalizeQuery(q, logical.DefaultNormalize())
	}
	return q, nil
}

func (e *Engine) query(ctx context.Context, sel *sql.SelectStmt, explain bool, text string) (*Result, error) {
	res, _, err := e.run(ctx, sel, explain, false, text)
	return res, err
}

// run optimizes and (unless explain) executes one SELECT. With analyze set,
// execution collects per-operator runtime metrics, the metrics tree is
// returned alongside the result, every (node, est, actual) pair is recorded
// into the engine's feedback ring, and — when the adaptive options are on —
// scan observations are harvested into cardinality overrides and bad plans
// are marked for re-optimization. text is the original statement text, used
// to key the feedback by statement family.
func (e *Engine) run(ctx context.Context, sel *sql.SelectStmt, explain, analyze bool, text string) (*Result, *PlanAnalysis, error) {
	// Admission first (queue without holding any latch), then the shared
	// latch for the whole build-optimize-execute span: a SELECT never
	// observes a half-applied DDL, and version checks against cached plans
	// cannot race catalog changes.
	release, err := e.admit(ctx)
	if err != nil {
		return nil, nil, err
	}
	defer release()
	e.mu.RLock()
	defer e.mu.RUnlock()

	q, err := e.Build(sel)
	if err != nil {
		return nil, nil, err
	}

	// Materialized-view answering: collect alternatives, optimize each, and
	// keep the cheapest plan (§7.3).
	type alternative struct {
		q  *logical.Query
		mv string
	}
	alts := []alternative{{q: q}}
	if e.opts.UseMaterializedViews {
		for _, rw := range matview.RewriteWithViews(q, e.cat) {
			alts = append(alts, alternative{q: rw.Query, mv: rw.MV.Name})
		}
	}

	if e.opts.Optimizer == Reference {
		if analyze {
			return nil, nil, fmt.Errorf("queryopt: EXPLAIN ANALYZE requires an optimized plan (reference mode executes logical trees)")
		}
		logical.PruneColumns(q)
		ec := e.newExecCtx(ctx, q.Meta)
		res, err := ec.RunQuery(q)
		if err != nil {
			return nil, nil, err
		}
		return e.finish(q, nil, res, ec, ""), nil, nil
	}

	var bestPlan physical.Plan
	var bestQ *logical.Query
	bestMV, bestTier := "", ""
	for _, alt := range alts {
		logical.PruneColumns(alt.q)
		plan, tier, err := e.optimizeOne(alt.q)
		if err != nil {
			return nil, nil, err
		}
		_, c := plan.Estimate()
		if bestPlan == nil {
			bestPlan, bestQ, bestMV, bestTier = plan, alt.q, alt.mv, tier
			continue
		}
		if _, bc := bestPlan.Estimate(); c < bc {
			bestPlan, bestQ, bestMV, bestTier = plan, alt.q, alt.mv, tier
		}
	}

	// Parallel execution: plan the exchanges (§7.1), then run on the
	// morsel-driven engine over the engine's shared worker pool.
	if e.opts.Parallelism > 1 {
		model := e.costModel()
		par := parallel.Parallelize(bestPlan, parallel.Config{
			Degree:         e.opts.Parallelism,
			CommCostPerRow: model.CommCostPerRow,
		}, model)
		bestPlan = par.Plan
	}

	if explain {
		res := &Result{Columns: []string{"plan"}, PlannerTier: bestTier}
		// With an adaptive fast path configured, EXPLAIN says which tier
		// planned the query; without one, the output is unchanged.
		if e.opts.GreedyJoinThreshold > 0 || e.opts.GreedyCostThreshold > 0 {
			res.Rows = append(res.Rows, []any{"-- planner: " + bestTier})
		}
		for _, line := range strings.Split(strings.TrimRight(physical.Format(bestPlan, bestQ.Meta), "\n"), "\n") {
			res.Rows = append(res.Rows, []any{line})
		}
		res.EstRows, res.EstCost = bestPlan.Estimate()
		res.UsedMaterializedView = bestMV
		return res, nil, nil
	}
	ec := e.newExecCtx(ctx, bestQ.Meta)
	var metrics *physical.RunMetrics
	if analyze {
		metrics = ec.EnableAnalyze()
	}
	res, err := exec.RunPlanQuery(bestPlan, bestQ, ec)
	if err != nil {
		return nil, nil, err
	}
	out := e.finish(bestQ, bestPlan, res, ec, bestMV)
	out.PlannerTier = bestTier
	var pa *PlanAnalysis
	if analyze {
		fp, fpErr := sql.Fingerprint(text)
		if fpErr != nil || fp == "" {
			fp = text
		}
		pa = buildAnalysis(bestPlan, bestQ.Meta, metrics)
		e.feedback.RecordPlan(bestPlan, bestQ.Meta, metrics, fp)
		if e.overrides != nil && e.harvestOverrides(bestPlan, bestQ.Meta, metrics) {
			// A materially changed override invalidates cached plan diagrams
			// the same way DDL/ANALYZE do. catVersion is atomic, so bumping
			// under the shared latch is safe.
			e.catVersion.Add(1)
		}
		if thr := e.opts.ReplanQErrorThreshold; thr > 1 && pa.WorstQError > thr {
			e.markReplan(fp)
		}
	}
	return out, pa, nil
}

// newExecCtx builds the execution context for one query under the engine's
// resource-governor options: the caller's context for cancellation and
// deadlines, a fresh per-query memory account capped at MemBudget, and the
// spill directory.
func (e *Engine) newExecCtx(ctx context.Context, meta *logical.Metadata) *exec.Ctx {
	ec := exec.NewCtx(e.store, meta)
	ec.Context = ctx
	// The per-query account chains to the engine-wide pool so concurrent
	// queries cannot collectively exceed TotalMemBudget.
	ec.Mem = exec.NewMemAccountWithParent(e.opts.MemBudget, e.totalMem)
	ec.TempDir = e.opts.TempDir
	ec.Faults = e.faults
	ec.Vectorize = e.opts.Vectorize != VectorizeOff
	ec.NoPrune = e.opts.DisableZoneMaps
	if e.opts.Parallelism > 1 {
		ec.Parallelism = e.opts.Parallelism
		ec.Pool = e.pool
	}
	return ec
}

// costModel resolves the engine's cost model (options override or default).
func (e *Engine) costModel() cost.Model {
	if e.opts.Cost != nil {
		return *e.opts.Cost
	}
	return cost.DefaultModel()
}

// newEstimator builds the statistics estimator for one query, wired to the
// engine's feedback-patched cardinality overrides when FeedbackPatching is on
// (e.overrides is nil otherwise, which the estimator treats as absent).
func (e *Engine) newEstimator(md *logical.Metadata) *stats.Estimator {
	est := stats.NewEstimator(md)
	est.Overrides = e.overrides
	if e.store.DiskBacked() {
		// Segment footers double as coarse, always-current statistics when
		// ANALYZE output is missing or has drifted from the stored data.
		est.SegmentStats = func(name string) *catalog.TableStats {
			tab, ok := e.store.Table(name)
			if !ok {
				return nil
			}
			return stats.SegmentTableStats(tab)
		}
		if !e.opts.DisableZoneMaps {
			// Cost model charges seq scans only the pages of segments the
			// compiled zone predicates cannot eliminate.
			est.ScanPages = func(scan *logical.Scan, filters []logical.Scalar) float64 {
				tab, ok := e.store.Table(scan.Table.Name)
				if !ok {
					return -1
				}
				ords := make([]int, len(scan.Cols))
				for i, id := range scan.Cols {
					ords[i] = md.Column(id).BaseOrd
				}
				preds := exec.CompileScanZonePreds(filters, scan.Cols, ords)
				if p := tab.PrunedPageCount(preds); p >= 0 {
					return float64(p)
				}
				return -1
			}
		}
	}
	return est
}

// optimizeOne optimizes a logical query and reports the planning tier that
// produced the plan (see Result.PlannerTier).
func (e *Engine) optimizeOne(q *logical.Query) (physical.Plan, string, error) {
	model := e.costModel()
	switch e.opts.Optimizer {
	case SystemR:
		opt := systemr.New(e.newEstimator(q.Meta), model, e.opts.SystemR)
		plan, err := opt.Optimize(q)
		return plan, string(opt.Tier), err
	case Starburst:
		inner := systemr.New(e.newEstimator(q.Meta), model, e.opts.SystemR)
		opt := &qgm.Optimizer{
			Engine: qgm.DefaultEngine(),
			Plan:   inner,
		}
		plan, _, err := opt.Optimize(q)
		return plan, string(inner.Tier), err
	case Cascades:
		opt := cascadesopt.New(e.newEstimator(q.Meta), model, e.opts.Cascades)
		plan, err := opt.Optimize(q)
		return plan, "full", err
	}
	return nil, "", fmt.Errorf("queryopt: unknown optimizer %v", e.opts.Optimizer)
}

func (e *Engine) finish(q *logical.Query, plan physical.Plan, res *exec.Result, ctx *exec.Ctx, mv string) *Result {
	out := &Result{
		Columns:              q.ColNames,
		UsedMaterializedView: mv,
		Stats: ExecStats{
			PagesRead:     ctx.Counters.PagesRead,
			RowsProcessed: ctx.Counters.RowsProcessed,
			IndexSeeks:    ctx.Counters.IndexSeeks,
			SubqueryEvals: ctx.Counters.SubqueryEvals,
			HashOps:       ctx.Counters.HashOps,
			Comparisons:   ctx.Counters.Comparisons,
			Spills:         ctx.Counters.Spills,
			SpillBytes:     ctx.Counters.SpillBytes,
			PeakMemBytes:   ctx.Mem.Peak(),
			SegmentsRead:   ctx.Counters.SegmentsRead,
			SegmentsPruned: ctx.Counters.SegmentsPruned,
			BytesRead:      ctx.Counters.BytesRead,
			BlocksDict:     ctx.Counters.BlocksDict,
			BlocksRLE:      ctx.Counters.BlocksRLE,
			BlocksPlain:    ctx.Counters.BlocksPlain,
		},
	}
	if plan != nil {
		out.Plan = physical.Format(plan, q.Meta)
		out.EstRows, out.EstCost = plan.Estimate()
	}
	for _, r := range res.Rows {
		row := make([]any, len(r))
		for i, d := range r {
			row[i] = toGo(d)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

func toGo(d datum.D) any {
	switch d.Kind() {
	case datum.KindNull:
		return nil
	case datum.KindBool:
		return d.Bool()
	case datum.KindInt:
		return d.Int()
	case datum.KindFloat:
		return d.Float()
	case datum.KindString:
		return d.Str()
	}
	return nil
}

// Catalog exposes the engine's catalog for tooling and experiments.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Store exposes the engine's storage for tooling and experiments.
func (e *Engine) Store() *storage.Store { return e.store }

// Flush seals every disk-backed table's unsealed tail into segment files,
// making all inserted rows durable (and prunable). A no-op for in-memory
// engines.
func (e *Engine) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.store.FlushAll()
}

// Corruption is one detected on-disk corruption with coordinates (table,
// segment, region, column). Every Corruption matches ErrSegmentCorrupt under
// errors.Is.
type Corruption = storage.CorruptError

// RecoveryReport describes what opening one disk-backed table found:
// quarantined orphan files, a truncated manifest tail, soft-adopted corrupt
// segments.
type RecoveryReport = storage.RecoveryReport

// ErrSegmentCorrupt is the errors.Is target for detected segment corruption
// anywhere in the engine: block decodes, recovery reports, scrub findings.
var ErrSegmentCorrupt = storage.ErrSegmentCorrupt

// Scrub walks every sealed segment of every disk-backed table, verifying the
// footer and every column block checksum, and returns one entry per
// corruption found. Empty means the on-disk state is fully intact. In-memory
// engines scrub to nothing.
func (e *Engine) Scrub() []*Corruption {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store.Scrub()
}

// ScrubDir verifies a storage directory without opening an engine or knowing
// the schema: every table subdirectory's manifest is replayed and each
// listed segment fully checked. The offline form behind `qopt -scrub`.
func ScrubDir(dir string) ([]*Corruption, error) {
	return storage.ScrubDir(dir)
}

// RecoveryReports returns what CREATE TABLE found when (re)opening each
// disk-backed table directory under StorageDir, in creation order.
func (e *Engine) RecoveryReports() []*RecoveryReport {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store.Recovery()
}

// LoadRows bulk-inserts native Go rows into a table (fast path for
// generators and examples).
func (e *Engine) LoadRows(table string, rows [][]any) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	tab, ok := e.store.Table(table)
	if !ok {
		return fmt.Errorf("queryopt: unknown table %q", table)
	}
	batch := make([]datum.Row, 0, len(rows))
	for _, r := range rows {
		dr := make(datum.Row, len(r))
		for i, v := range r {
			d, err := fromGo(v)
			if err != nil {
				return err
			}
			dr[i] = d
		}
		batch = append(batch, dr)
	}
	if err := tab.InsertBatch(batch); err != nil {
		return err
	}
	if e.opts.IncrementalStats {
		for _, dr := range batch {
			e.maintainStats(tab.Def, dr)
		}
	}
	return nil
}

func fromGo(v any) (datum.D, error) {
	switch t := v.(type) {
	case nil:
		return datum.Null, nil
	case bool:
		return datum.NewBool(t), nil
	case int:
		return datum.NewInt(int64(t)), nil
	case int64:
		return datum.NewInt(t), nil
	case float64:
		return datum.NewFloat(t), nil
	case string:
		return datum.NewString(t), nil
	}
	return datum.Null, fmt.Errorf("queryopt: unsupported value type %T", v)
}
