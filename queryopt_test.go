package queryopt

import (
	"strings"
	"testing"
)

func demoEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	e := New(opts)
	e.MustExec(`CREATE TABLE emp (eid INT NOT NULL, name VARCHAR, did INT, sal FLOAT, PRIMARY KEY (eid))`)
	e.MustExec(`CREATE TABLE dept (did INT NOT NULL, dname VARCHAR, loc VARCHAR, PRIMARY KEY (did))`)
	e.MustExec(`CREATE INDEX emp_did ON emp (did)`)
	e.MustExec(`INSERT INTO emp VALUES
		(1, 'alice', 10, 120.5), (2, 'bob', 10, 95.0), (3, 'carol', 20, 210.0),
		(4, 'dave', NULL, 50.0), (5, 'erin', 30, NULL)`)
	e.MustExec(`INSERT INTO dept VALUES (10, 'eng', 'Denver'), (20, 'sales', 'Austin'), (30, 'ops', 'Denver')`)
	e.MustExec(`ANALYZE`)
	return e
}

func TestEndToEndAllOptimizers(t *testing.T) {
	queries := []struct {
		sql  string
		rows int
	}{
		{"SELECT name FROM emp WHERE sal > 100", 2},
		{"SELECT e.name, d.dname FROM emp e, dept d WHERE e.did = d.did", 4},
		{"SELECT d.loc, COUNT(*) FROM emp e, dept d WHERE e.did = d.did GROUP BY d.loc ORDER BY d.loc", 2},
		{"SELECT name FROM emp ORDER BY sal DESC LIMIT 2", 2},
		{"SELECT d.dname FROM dept d WHERE EXISTS (SELECT 1 FROM emp e WHERE e.did = d.did)", 3},
		{"SELECT COUNT(*), AVG(sal) FROM emp", 1},
		{"SELECT DISTINCT d.loc FROM dept d", 2},
	}
	for _, kind := range []OptimizerKind{SystemR, Starburst, Cascades, Reference} {
		e := demoEngine(t, Options{Optimizer: kind})
		for _, qc := range queries {
			res, err := e.Exec(qc.sql)
			if err != nil {
				t.Fatalf("[%v] %s: %v", kind, qc.sql, err)
			}
			if len(res.Rows) != qc.rows {
				t.Errorf("[%v] %s: got %d rows, want %d", kind, qc.sql, len(res.Rows), qc.rows)
			}
		}
	}
}

func TestOptimizersAgree(t *testing.T) {
	q := "SELECT e.name, d.dname FROM emp e, dept d WHERE e.did = d.did AND d.loc = 'Denver' ORDER BY e.name"
	var results [][]string
	for _, kind := range []OptimizerKind{SystemR, Starburst, Cascades, Reference} {
		e := demoEngine(t, Options{Optimizer: kind})
		res, err := e.Exec(q)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		var rows []string
		for _, r := range res.Rows {
			rows = append(rows, strings.TrimSpace(strings.Join([]string{r[0].(string), r[1].(string)}, "|")))
		}
		results = append(results, rows)
	}
	for i := 1; i < len(results); i++ {
		if strings.Join(results[i], ";") != strings.Join(results[0], ";") {
			t.Errorf("optimizer %d disagrees: %v vs %v", i, results[i], results[0])
		}
	}
}

func TestExplain(t *testing.T) {
	e := demoEngine(t, Options{})
	// With only 5 rows a sequential scan is legitimately optimal; grow the
	// table so the point lookup pays off.
	rows := make([][]any, 0, 5000)
	for i := 100; i < 5100; i++ {
		rows = append(rows, []any{i, "filler", 10, 1.0})
	}
	if err := e.LoadRows("emp", rows); err != nil {
		t.Fatal(err)
	}
	e.MustExec("ANALYZE emp")
	plan, err := e.Explain("SELECT name FROM emp WHERE eid = 3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "index-scan") {
		t.Errorf("point lookup should use the primary index:\n%s", plan)
	}
}

func TestOrdinaryViews(t *testing.T) {
	e := demoEngine(t, Options{})
	e.MustExec("CREATE VIEW denver AS SELECT e.name AS name, e.sal AS sal FROM emp e, dept d WHERE e.did = d.did AND d.loc = 'Denver'")
	res, err := e.Exec("SELECT name FROM denver WHERE sal > 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "alice" {
		t.Errorf("view query wrong: %v", res.Rows)
	}
}

func TestMaterializedViews(t *testing.T) {
	e := demoEngine(t, Options{UseMaterializedViews: true})
	e.MustExec("CREATE MATERIALIZED VIEW emp_by_dept AS SELECT e.did AS did, COUNT(*) AS cnt FROM emp e GROUP BY e.did")
	e.MustExec("ANALYZE emp_by_dept")
	res, err := e.Exec("SELECT e.did, COUNT(*) FROM emp e GROUP BY e.did")
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedMaterializedView != "emp_by_dept" {
		t.Errorf("expected the materialized view to be used\n%s", res.Plan)
	}
	if len(res.Rows) != 4 {
		t.Errorf("rows = %d, want 4 (incl. NULL group)", len(res.Rows))
	}
}

func TestUserDefinedPredicate(t *testing.T) {
	e := demoEngine(t, Options{})
	e.RegisterPredicate("expensive_match", 25.0, 0.4, func(args []any) bool {
		s, _ := args[0].(string)
		return strings.Contains(s, "a")
	})
	res, err := e.Exec("SELECT name FROM emp WHERE expensive_match(name)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 { // alice, carol, dave
		t.Errorf("UDP rows = %d, want 3: %v", len(res.Rows), res.Rows)
	}
}

func TestResultStatsAndEstimates(t *testing.T) {
	e := demoEngine(t, Options{})
	res, err := e.Exec("SELECT e.name FROM emp e, dept d WHERE e.did = d.did")
	if err != nil {
		t.Fatal(err)
	}
	if res.EstCost <= 0 || res.Plan == "" {
		t.Error("plan and estimates should be populated")
	}
	if res.Stats.PagesRead == 0 {
		t.Error("execution counters should be populated")
	}
}

func TestDDLErrors(t *testing.T) {
	e := New(Options{})
	if _, err := e.Exec("CREATE TABLE t (a INT, PRIMARY KEY (nope))"); err == nil {
		t.Error("bad primary key should fail")
	}
	e.MustExec("CREATE TABLE t (a INT)")
	if _, err := e.Exec("CREATE TABLE t (a INT)"); err == nil {
		t.Error("duplicate table should fail")
	}
	if _, err := e.Exec("CREATE INDEX i ON missing (a)"); err == nil {
		t.Error("index on missing table should fail")
	}
	if _, err := e.Exec("CREATE INDEX i ON t (nope)"); err == nil {
		t.Error("index on missing column should fail")
	}
	if _, err := e.Exec("INSERT INTO missing VALUES (1)"); err == nil {
		t.Error("insert into missing table should fail")
	}
	if _, err := e.Exec("ANALYZE missing"); err == nil {
		t.Error("analyze missing table should fail")
	}
	if _, err := e.Exec("SELECT * FROM missing"); err == nil {
		t.Error("select from missing table should fail")
	}
	if _, err := e.Exec("NOT SQL AT ALL"); err == nil {
		t.Error("parse error should surface")
	}
}

func TestClusteredIndexSortsHeap(t *testing.T) {
	e := New(Options{})
	e.MustExec("CREATE TABLE t (a INT, b INT)")
	e.MustExec("INSERT INTO t VALUES (3, 1), (1, 2), (2, 3)")
	e.MustExec("CREATE CLUSTERED INDEX t_a ON t (a)")
	e.MustExec("ANALYZE t")
	res, err := e.Exec("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 1 || res.Rows[2][0].(int64) != 3 {
		t.Errorf("heap should be physically sorted: %v", res.Rows)
	}
	if _, err := e.Exec("CREATE CLUSTERED INDEX t_b ON t (b)"); err == nil {
		t.Error("second clustered index should fail")
	}
}

func TestLoadRows(t *testing.T) {
	e := New(Options{})
	e.MustExec("CREATE TABLE t (a INT, b VARCHAR, c FLOAT, d BOOLEAN)")
	if err := e.LoadRows("t", [][]any{
		{int64(1), "x", 1.5, true},
		{2, "y", 2.5, false},
		{nil, nil, nil, nil},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Exec("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 3 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	if err := e.LoadRows("t", [][]any{{struct{}{}, nil, nil, nil}}); err == nil {
		t.Error("unsupported type should fail")
	}
	if err := e.LoadRows("missing", nil); err == nil {
		t.Error("missing table should fail")
	}
}

func TestNullsSurfaceAsNil(t *testing.T) {
	e := demoEngine(t, Options{})
	res, err := e.Exec("SELECT sal FROM emp WHERE name = 'erin'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != nil {
		t.Errorf("NULL should surface as nil, got %#v", res.Rows[0][0])
	}
}

func TestDisableRewrites(t *testing.T) {
	e := demoEngine(t, Options{DisableRewrites: true})
	res, err := e.Exec("SELECT d.dname FROM dept d WHERE EXISTS (SELECT 1 FROM emp e WHERE e.did = d.did)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("rows = %d", len(res.Rows))
	}
	// Without unnesting, tuple-iteration must have evaluated subqueries.
	if res.Stats.SubqueryEvals == 0 {
		t.Error("expected tuple-iteration subquery evaluation")
	}
}
