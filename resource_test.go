package queryopt

// resource_test.go exercises the resource governor end to end through the
// public Engine API: memory-budgeted queries must degrade to disk and stay
// bit-identical to unbudgeted runs (serially and in parallel), cancellation
// and deadlines must unwind promptly at every parallelism degree without
// leaking goroutines, injected storage faults must surface exactly once, and
// EXPLAIN ANALYZE must report memory and spill figures.

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/faultfs"
)

// spillBudget is deliberately tiny: every hash join build, hash aggregation
// and sort over the big random corpus trips it, forcing the degraded
// operators while the spill floor keeps partitions viable.
const spillBudget = 4 << 10

// TestSpillEquivalence: the same random query corpus must return exactly the
// same rows — floats compared bit-for-bit in hex — from an unbudgeted serial
// engine, a budget-starved serial engine, and budget-starved parallel engines
// at degrees 4 and 8. Cumulatively the starved engines must actually spill,
// otherwise the test is vacuous.
func TestSpillEquivalence(t *testing.T) {
	const trials = 25
	for seed := int64(1); seed <= 2; seed++ {
		baseline := bigRandSchema(t, Options{Optimizer: SystemR}, seed)
		starved := []*Engine{
			bigRandSchema(t, Options{Optimizer: SystemR, MemBudget: spillBudget}, seed),
			bigRandSchema(t, Options{Optimizer: SystemR, MemBudget: spillBudget, Parallelism: 4}, seed),
			bigRandSchema(t, Options{Optimizer: SystemR, MemBudget: spillBudget, Parallelism: 8}, seed),
		}
		labels := []string{"serial", "parallel-4", "parallel-8"}
		rng := rand.New(rand.NewSource(seed * 77))
		var totalSpills int64
		for trial := 0; trial < trials; trial++ {
			q := randQuery(rng)
			want, err := baseline.Exec(q)
			if err != nil {
				t.Fatalf("seed %d trial %d baseline: %v\nquery: %s", seed, trial, err, q)
			}
			ordered := strings.Contains(q, "ORDER BY")
			for i, e := range starved {
				got, err := e.Exec(q)
				if err != nil {
					t.Fatalf("seed %d trial %d %s: %v\nquery: %s", seed, trial, labels[i], err, q)
				}
				totalSpills += got.Stats.Spills
				if ordered {
					if len(got.Rows) != len(want.Rows) {
						t.Fatalf("seed %d trial %d %s: %d rows, want %d\nquery: %s",
							seed, trial, labels[i], len(got.Rows), len(want.Rows), q)
					}
					for j := range want.Rows {
						if w, g := exactRow(want.Rows[j]), exactRow(got.Rows[j]); w != g {
							t.Fatalf("seed %d trial %d %s row %d:\n  got  %s\n  want %s\nquery: %s",
								seed, trial, labels[i], j, g, w, q)
						}
					}
				} else {
					w, g := exactRows(want), exactRows(got)
					for j := range w {
						if j >= len(g) || w[j] != g[j] {
							t.Fatalf("seed %d trial %d %s: multiset mismatch at %d\nquery: %s",
								seed, trial, labels[i], j, q)
						}
					}
					if len(g) != len(w) {
						t.Fatalf("seed %d trial %d %s: %d rows, want %d", seed, trial, labels[i], len(g), len(w))
					}
				}
			}
		}
		if totalSpills == 0 {
			t.Fatalf("seed %d: budget %d never forced a spill — test is vacuous", seed, spillBudget)
		}
	}
}

// TestBudgetedQueryBitIdenticalWithStats: a single aggregation-heavy query,
// asserting both equivalence and that the budgeted run reports spills while
// the unbudgeted one reports the memory it reserved instead.
func TestBudgetedQueryBitIdenticalWithStats(t *testing.T) {
	const q = `SELECT r.a, COUNT(*), SUM(r.f), MIN(t.s)
FROM r, t WHERE r.fk = t.pk GROUP BY r.a ORDER BY r.a`
	free := bigRandSchema(t, Options{Optimizer: SystemR}, 3)
	tight := bigRandSchema(t, Options{Optimizer: SystemR, MemBudget: 512}, 3)
	want := free.MustExec(q)
	got := tight.MustExec(q)
	if want.Stats.Spills != 0 || want.Stats.PeakMemBytes == 0 {
		t.Fatalf("unbudgeted stats unexpected: %+v", want.Stats)
	}
	if got.Stats.Spills == 0 || got.Stats.SpillBytes == 0 {
		t.Fatalf("budgeted run did not spill: %+v", got.Stats)
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("rows: %d vs %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if w, g := exactRow(want.Rows[i]), exactRow(got.Rows[i]); w != g {
			t.Fatalf("row %d: got %s want %s", i, g, w)
		}
	}
}

// TestImpossibleBudgetFailsTyped: a query whose minimal working set cannot
// fit even with spilling (all rows share one join key, so one grace-join
// partition holds everything) must fail with ErrMemoryBudgetExceeded rather
// than hang, OOM, or silently truncate.
func TestImpossibleBudgetFailsTyped(t *testing.T) {
	e := New(Options{Optimizer: SystemR, MemBudget: 1 << 10})
	t.Cleanup(e.Close)
	e.MustExec(`CREATE TABLE big (pk INT NOT NULL, k INT, s VARCHAR, PRIMARY KEY (pk))`)
	rows := make([][]any, 6000)
	for i := range rows {
		rows[i] = []any{i, 7, "payload-payload-payload-payload"}
	}
	if err := e.LoadRows("big", rows); err != nil {
		t.Fatal(err)
	}
	e.MustExec("ANALYZE")
	_, err := e.Exec(`SELECT a.pk, b.pk FROM big a, big b WHERE a.k = b.k`)
	if !errors.Is(err, ErrMemoryBudgetExceeded) {
		t.Fatalf("got %v, want ErrMemoryBudgetExceeded", err)
	}
}

// cancelCorpusQuery is a join+aggregation over the big corpus — long enough
// to be mid-flight when the context fires at any degree.
const cancelCorpusQuery = `SELECT r.fk, COUNT(*), SUM(r.f) FROM r, t, u
WHERE r.fk = t.pk AND t.a = u.a GROUP BY r.fk ORDER BY r.fk`

// TestCancellationPromptAtAllDegrees: a query canceled mid-run returns
// context.Canceled within one batch interval (far under a second here) at
// parallelism 1, 4 and 8, and the engine keeps working afterwards.
func TestCancellationPromptAtAllDegrees(t *testing.T) {
	for _, degree := range []int{1, 4, 8} {
		e := bigRandSchema(t, Options{Optimizer: SystemR, Parallelism: degree}, 4)
		// Pre-canceled: the very first checkpoint must observe it.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		start := time.Now()
		_, err := e.ExecContext(ctx, cancelCorpusQuery)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("degree %d: got %v, want context.Canceled", degree, err)
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("degree %d: cancellation took %v", degree, d)
		}
		// Cancel mid-flight from another goroutine.
		ctx2, cancel2 := context.WithCancel(context.Background())
		go func() {
			time.Sleep(2 * time.Millisecond)
			cancel2()
		}()
		if _, err := e.ExecContext(ctx2, cancelCorpusQuery); err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("degree %d: mid-flight cancel returned %v", degree, err)
		}
		// The engine must remain usable after a canceled query.
		if _, err := e.Exec(`SELECT COUNT(*) FROM r`); err != nil {
			t.Fatalf("degree %d: engine broken after cancel: %v", degree, err)
		}
	}
}

// TestDeadlineExceeded: an expired deadline surfaces as DeadlineExceeded.
func TestDeadlineExceeded(t *testing.T) {
	e := bigRandSchema(t, Options{Optimizer: SystemR, Parallelism: 4}, 5)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	if _, err := e.ExecContext(ctx, cancelCorpusQuery); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

// TestEngineFaultInjectionAtDegree8: a storage fault injected into the
// engine's scan path surfaces exactly once from a parallel query, and the
// engine survives to run the next query.
func TestEngineFaultInjectionAtDegree8(t *testing.T) {
	e := bigRandSchema(t, Options{Optimizer: SystemR, Parallelism: 8}, 6)
	boom := errors.New("simulated disk failure")
	e.faults = faultfs.New(faultfs.Rule{Op: "scan", After: 4, Err: boom})
	if _, err := e.Exec(cancelCorpusQuery); !errors.Is(err, boom) {
		t.Fatalf("got %v, want injected error", err)
	}
	e.faults = nil
	if _, err := e.Exec(`SELECT COUNT(*) FROM r`); err != nil {
		t.Fatalf("engine broken after injected fault: %v", err)
	}
}

// TestSpillFaultInjectionThroughEngine: faults on spill-file I/O during a
// budget-forced degraded query surface cleanly too.
func TestSpillFaultInjectionThroughEngine(t *testing.T) {
	e := bigRandSchema(t, Options{Optimizer: SystemR, MemBudget: spillBudget}, 7)
	boom := errors.New("spill device gone")
	e.faults = faultfs.New(faultfs.Rule{Op: "spill.write", After: 2, Err: boom})
	if _, err := e.Exec(cancelCorpusQuery); !errors.Is(err, boom) {
		t.Fatalf("got %v, want injected spill error", err)
	}
}

// TestNoGoroutineLeaksThroughEngine: completion, cancellation, injected
// failure and budget exhaustion at degrees 1, 4, 8, then engine close — the
// goroutine count must settle back to its baseline.
func TestNoGoroutineLeaksThroughEngine(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for _, degree := range []int{1, 4, 8} {
		e := bigRandSchema(t, Options{Optimizer: SystemR, Parallelism: degree, MemBudget: spillBudget}, 8)
		if _, err := e.Exec(cancelCorpusQuery); err != nil {
			t.Fatalf("degree %d: %v", degree, err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := e.ExecContext(ctx, cancelCorpusQuery); !errors.Is(err, context.Canceled) {
			t.Fatalf("degree %d: %v", degree, err)
		}
		e.faults = faultfs.New(faultfs.Rule{Op: "scan", After: 1})
		if _, err := e.Exec(cancelCorpusQuery); !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("degree %d: %v", degree, err)
		}
		e.faults = nil
		e.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
	}
}

// TestExplainAnalyzeShowsMemoryAndSpills: the rendered EXPLAIN ANALYZE tree
// includes mem_bytes on memory-charging operators, and spills/spill_bytes
// when the budget forces degradation.
func TestExplainAnalyzeShowsMemoryAndSpills(t *testing.T) {
	free := bigRandSchema(t, Options{Optimizer: SystemR}, 9)
	res, err := free.Exec("EXPLAIN ANALYZE " + cancelCorpusQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "mem_bytes=") {
		t.Fatalf("no mem_bytes in EXPLAIN ANALYZE output:\n%s", res.Plan)
	}
	if strings.Contains(res.Plan, "spills=") {
		t.Fatalf("unbudgeted plan claims spills:\n%s", res.Plan)
	}
	tight := bigRandSchema(t, Options{Optimizer: SystemR, MemBudget: 512}, 9)
	res, err = tight.Exec("EXPLAIN ANALYZE " + cancelCorpusQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "spills=") || !strings.Contains(res.Plan, "spill_bytes=") {
		t.Fatalf("budgeted plan reports no spills:\n%s", res.Plan)
	}
}
