// Prepared statements and the parameterized plan cache: the serving-layer
// face of §7.4's parametric optimization. Prepare parses and normalizes a
// SELECT containing `?`/`$n` placeholders; each execution binds concrete
// values, and the engine keeps a bounded LRU of plan diagrams keyed on the
// normalized text plus the parameter-type signature. A diagram box stores a
// plan optimized at one binding vector with its parameter tags intact, so a
// hit re-binds the cached plan via physical.BindParams (choose-plan
// dispatch) instead of re-running the optimizer; a miss optimizes at the
// actual bindings and grows the diagram online. Because substitution makes
// every stored plan correct for any binding, dispatch can only affect plan
// quality, never results.
package queryopt

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/datum"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/parallel"
	"repro/internal/parametric"
	"repro/internal/physical"
	"repro/internal/rewrite"
	"repro/internal/sql"
)

// Stmt is a prepared SELECT. It is immutable and safe for concurrent
// execution from many goroutines.
type Stmt struct {
	e       *Engine
	text    string
	norm    string
	fp      string // statement-family fingerprint (replan-trigger key)
	nParams int
	sel     *sql.SelectStmt
}

// Text returns the original statement text.
func (s *Stmt) Text() string { return s.text }

// NumParams returns the number of parameters the statement expects.
func (s *Stmt) NumParams() int { return s.nParams }

// Prepare parses a SELECT with `?` or `$n` placeholders for later execution.
// The prepared statement shares the engine's plan cache with every other
// Stmt whose normalized text matches.
func (e *Engine) Prepare(text string) (*Stmt, error) {
	if e.opts.Optimizer == Reference {
		return nil, fmt.Errorf("queryopt: Prepare requires an optimizing mode (reference mode executes logical trees)")
	}
	norm, nParams, err := sql.Normalize(text)
	if err != nil {
		return nil, err
	}
	fp, err := sql.Fingerprint(text)
	if err != nil || fp == "" {
		fp = norm
	}
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("queryopt: Prepare supports SELECT statements only, got %T", stmt)
	}
	return &Stmt{e: e, text: text, norm: norm, fp: fp, nParams: nParams, sel: sel}, nil
}

// Exec runs the prepared statement with the given arguments (native Go
// values: int64, float64, string, bool, or nil for NULL).
func (s *Stmt) Exec(args ...any) (*Result, error) {
	return s.ExecContext(context.Background(), args...)
}

// cacheEntry is one plan-cache slot: the diagram for one (normalized text,
// type signature) pair, stamped with the catalog version it was built under.
type cacheEntry struct {
	mu          sync.Mutex
	version     uint64
	diagram     *parametric.Diagram
	uncacheable bool
}

// ExecContext is Exec under a context. Execution follows the same admission
// and latching discipline as Engine.ExecContext.
func (s *Stmt) ExecContext(ctx context.Context, args ...any) (*Result, error) {
	if len(args) != s.nParams {
		return nil, fmt.Errorf("queryopt: statement expects %d parameter(s), got %d", s.nParams, len(args))
	}
	binds := make([]datum.D, len(args))
	for i, a := range args {
		d, err := fromGo(a)
		if err != nil {
			return nil, err
		}
		binds[i] = d
	}
	e := s.e
	release, err := e.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	e.mu.RLock()
	defer e.mu.RUnlock()

	// The q-error trigger consumes at most one replan mark per statement
	// family: this execution re-optimizes (seeing any feedback-patched
	// statistics) instead of dispatching the cached diagram.
	replan := e.consumeReplan(s.fp)

	if e.plans == nil {
		e.cacheMisses.Add(1)
		q, plan, tier, err := e.planBound(s.sel, binds)
		if err != nil {
			return nil, err
		}
		return e.executePlanTier(ctx, plan, q, tier)
	}

	ver := e.catVersion.Load()
	slot, _ := e.plans.GetOrPut(s.norm+"\x00"+typeSig(binds), func() any { return &cacheEntry{version: ver} })
	ce := slot.(*cacheEntry)

	ce.mu.Lock()
	if ce.version != ver || replan {
		// DDL, ANALYZE or a material feedback override moved the catalog
		// since this diagram was built, or the replan trigger fired: every
		// cached plan may now be invalid or stale — drop and regrow.
		ce.diagram = nil
		ce.uncacheable = false
		ce.version = ver
	}
	var box *parametric.Box
	if ce.diagram != nil {
		box = ce.diagram.Find(binds)
	}
	uncacheable := ce.uncacheable
	ce.mu.Unlock()

	if box != nil {
		e.cacheHits.Add(1)
		// Re-bind, never mutate: the cached plan is shared by every
		// concurrent execution of this entry.
		bound := physical.BindParams(box.Plan, binds)
		return e.executePlanTier(ctx, bound, box.Query, "cached")
	}

	e.cacheMisses.Add(1)
	q, plan, tier, err := e.planBound(s.sel, binds)
	if err != nil {
		return nil, err
	}
	if !uncacheable {
		if physical.HasSubqueryScalar(plan) {
			// Subquery scalars embed logical subplans the binder does not
			// descend into; executions of this entry always re-optimize.
			ce.mu.Lock()
			ce.uncacheable = true
			ce.mu.Unlock()
		} else {
			sig := parametric.Signature(plan)
			_, estCost := plan.Estimate()
			ce.mu.Lock()
			if ce.version == ver && !ce.uncacheable {
				if ce.diagram == nil {
					ce.diagram = parametric.NewDiagram(s.nParams)
				}
				// Add extends a same-signature box to cover these bindings,
				// so nearby future bindings hit without re-optimizing.
				if _, err := ce.diagram.Add(binds, plan, q, sig, estCost); err != nil {
					ce.mu.Unlock()
					return nil, err
				}
			}
			ce.mu.Unlock()
		}
	}
	return e.executePlanTier(ctx, plan, q, tier)
}

// planBound builds, rewrites and optimizes the statement at concrete
// bindings, leaving parameter tags on every substituted constant so the
// resulting plan can be re-bound later. It also reports the planning tier
// that produced the plan. Callers hold the shared latch.
func (e *Engine) planBound(sel *sql.SelectStmt, binds []datum.D) (*logical.Query, physical.Plan, string, error) {
	b := logical.NewBuilder(e.cat)
	for _, u := range e.udfs {
		b.RegisterUDP(u.name, u.cost, u.sel, u.fn)
	}
	b.BindParams(binds)
	q, err := b.Build(sel)
	if err != nil {
		return nil, nil, "", err
	}
	logical.NormalizeQuery(q, logical.DefaultNormalize())
	if !e.opts.DisableRewrites && e.opts.Optimizer != Starburst {
		rewrite.UnnestSubqueries(q)
		rewrite.AssociateJoinOuterjoin(q)
		rewrite.MovePredicates(q)
		rewrite.PushDownGroupBy(q)
		logical.NormalizeQuery(q, logical.DefaultNormalize())
	}
	logical.PruneColumns(q)
	plan, tier, err := e.optimizeOne(q)
	if err != nil {
		return nil, nil, "", err
	}
	// Cache the post-Parallelize plan: BindParams copies Exchange nodes like
	// any other, and executions skip re-planning the exchanges too.
	if e.opts.Parallelism > 1 {
		model := e.costModel()
		plan = parallel.Parallelize(plan, parallel.Config{
			Degree:         e.opts.Parallelism,
			CommCostPerRow: model.CommCostPerRow,
		}, model).Plan
	}
	return q, plan, tier, nil
}

// executePlan runs an already-optimized plan under the engine's resource
// governor. Callers hold the shared latch.
func (e *Engine) executePlan(ctx context.Context, plan physical.Plan, q *logical.Query) (*Result, error) {
	ec := e.newExecCtx(ctx, q.Meta)
	res, err := exec.RunPlanQuery(plan, q, ec)
	if err != nil {
		return nil, err
	}
	return e.finish(q, plan, res, ec, ""), nil
}

// executePlanTier is executePlan with the planning tier stamped on the
// result ("cached" for plan-cache dispatches).
func (e *Engine) executePlanTier(ctx context.Context, plan physical.Plan, q *logical.Query, tier string) (*Result, error) {
	res, err := e.executePlan(ctx, plan, q)
	if err != nil {
		return nil, err
	}
	res.PlannerTier = tier
	return res, nil
}

// typeSig fingerprints the parameter kinds: bindings with different type
// signatures (including NULL, whose plans constant-fold differently) get
// separate cache entries.
func typeSig(binds []datum.D) string {
	sig := make([]byte, len(binds))
	for i, d := range binds {
		sig[i] = byte('a' + int(d.Kind()))
	}
	return string(sig)
}

// PlanCacheStats reports plan-cache effectiveness at plan granularity: a hit
// is an execution served by re-binding a cached plan, a miss ran the
// optimizer (including executions with the cache disabled).
type PlanCacheStats struct {
	Hits, Misses, Evictions int64
	// Entries is the number of (statement, type-signature) slots resident.
	Entries int
}

// PlanCacheStats returns a snapshot of the plan cache counters.
func (e *Engine) PlanCacheStats() PlanCacheStats {
	st := PlanCacheStats{Hits: e.cacheHits.Load(), Misses: e.cacheMisses.Load()}
	if e.plans != nil {
		st.Entries = e.plans.Len()
		st.Evictions = e.plans.Evictions()
	}
	return st
}

// CatalogVersion returns the engine's catalog version counter (bumped by DDL
// and ANALYZE — the plan-cache invalidation signal).
func (e *Engine) CatalogVersion() uint64 { return e.catVersion.Load() }
