package queryopt

// serving_test.go covers the concurrent serving layer: Exec hammered from
// many goroutines (run under -race by `make check`), prepared statements
// with the parameterized plan cache, admission control, catalog-version
// invalidation, the shared memory pool, and clean engine shutdown racing
// in-flight parallel queries.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Exec must be safe from many goroutines at once: 32 workers over a mixed
// corpus, with a few catalog-reading analyzed executions in the mix.
func TestConcurrentExecHammer(t *testing.T) {
	queries := []struct {
		sql  string
		rows int
	}{
		{"SELECT name FROM emp WHERE sal > 100", 2},
		{"SELECT e.name, d.dname FROM emp e, dept d WHERE e.did = d.did", 4},
		{"SELECT d.loc, COUNT(*) FROM emp e, dept d WHERE e.did = d.did GROUP BY d.loc ORDER BY d.loc", 2},
		{"SELECT name FROM emp ORDER BY sal DESC LIMIT 2", 2},
		{"SELECT COUNT(*), AVG(sal) FROM emp", 1},
	}
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			e := demoEngine(t, Options{Optimizer: SystemR, Parallelism: par})
			defer e.Close()
			var wg sync.WaitGroup
			for g := 0; g < 32; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 20; i++ {
						qc := queries[(g+i)%len(queries)]
						if i%7 == 3 {
							res, _, err := e.QueryAnalyze(qc.sql)
							if err != nil {
								t.Errorf("QueryAnalyze %s: %v", qc.sql, err)
								return
							}
							if len(res.Rows) != qc.rows {
								t.Errorf("QueryAnalyze %s: %d rows, want %d", qc.sql, len(res.Rows), qc.rows)
							}
							continue
						}
						res, err := e.Exec(qc.sql)
						if err != nil {
							t.Errorf("Exec %s: %v", qc.sql, err)
							return
						}
						if len(res.Rows) != qc.rows {
							t.Errorf("Exec %s: %d rows, want %d", qc.sql, len(res.Rows), qc.rows)
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

func TestPreparedStmtCacheHits(t *testing.T) {
	e := demoEngine(t, Options{Optimizer: SystemR})
	st, err := e.Prepare("SELECT name FROM emp WHERE sal > ? ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	if st.NumParams() != 1 {
		t.Fatalf("NumParams = %d, want 1", st.NumParams())
	}
	res, err := st.Exec(int64(100))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // alice (120.5), carol (210)
		t.Fatalf("sal > 100: %d rows, want 2: %v", len(res.Rows), res.Rows)
	}
	if s := e.PlanCacheStats(); s.Hits != 0 || s.Misses != 1 {
		t.Fatalf("after first exec: %+v", s)
	}
	// Same binding: plan-cache hit.
	if _, err := st.Exec(int64(100)); err != nil {
		t.Fatal(err)
	}
	if s := e.PlanCacheStats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("after repeat exec: %+v", s)
	}
	// A binding outside the diagram re-optimizes and extends the box...
	res, err = st.Exec(int64(200))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 { // carol
		t.Fatalf("sal > 200: %d rows, want 1", len(res.Rows))
	}
	// ...so a binding between the probes now hits.
	if _, err := st.Exec(int64(150)); err != nil {
		t.Fatal(err)
	}
	s := e.PlanCacheStats()
	if s.Hits != 2 || s.Misses != 2 || s.Entries != 1 {
		t.Fatalf("after box extension: %+v", s)
	}
	// A different parameter type is a different cache entry.
	if _, err := st.Exec(150.0); err != nil {
		t.Fatal(err)
	}
	if s := e.PlanCacheStats(); s.Entries != 2 || s.Misses != 3 {
		t.Fatalf("after float binding: %+v", s)
	}
	// Arity mismatches fail before touching the engine.
	if _, err := st.Exec(); err == nil {
		t.Fatal("Exec with no args succeeded")
	}
	if _, err := st.Exec(int64(1), int64(2)); err == nil {
		t.Fatal("Exec with extra args succeeded")
	}
	// Prepared statements normalize: a differently-spelled equivalent text
	// shares the cache entry.
	st2, err := e.Prepare("select NAME from EMP where SAL > $1 order by NAME")
	if err != nil {
		t.Fatal(err)
	}
	before := e.PlanCacheStats()
	if _, err := st2.Exec(int64(150)); err != nil {
		t.Fatal(err)
	}
	if s := e.PlanCacheStats(); s.Hits != before.Hits+1 || s.Entries != before.Entries {
		t.Fatalf("normalized text did not share the entry: %+v -> %+v", before, s)
	}
}

// One cached Stmt executed concurrently with different bindings must give
// each caller the bit-identical result of its own binding — the cached plan
// is re-bound per execution, never mutated.
func TestPreparedStmtConcurrentBindings(t *testing.T) {
	e := demoEngine(t, Options{Optimizer: SystemR})
	st, err := e.Prepare("SELECT name FROM emp WHERE did = ? ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	dids := []int64{10, 20, 30}
	want := map[int64][]string{}
	for _, did := range dids {
		res, err := e.Exec(fmt.Sprintf("SELECT name FROM emp WHERE did = %d ORDER BY name", did))
		if err != nil {
			t.Fatal(err)
		}
		want[did] = exactRows(res)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				did := dids[(g+i)%len(dids)]
				res, err := st.Exec(did)
				if err != nil {
					t.Errorf("Exec(%d): %v", did, err)
					return
				}
				got := exactRows(res)
				if len(got) != len(want[did]) {
					t.Errorf("Exec(%d): %v, want %v", did, got, want[did])
					return
				}
				for j := range got {
					if got[j] != want[did][j] {
						t.Errorf("Exec(%d) row %d: %q, want %q", did, j, got[j], want[did][j])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if s := e.PlanCacheStats(); s.Hits == 0 {
		t.Fatalf("concurrent executions never hit the cache: %+v", s)
	}
}

// Cached executions must be bit-identical to uncached (PlanCacheSize: -1)
// and to plain Exec with the literals inlined.
func TestPreparedMatchesUnprepared(t *testing.T) {
	type tc struct {
		param   string
		literal string
		args    []any
	}
	cases := []tc{
		{"SELECT name FROM emp WHERE sal > ? ORDER BY name",
			"SELECT name FROM emp WHERE sal > 100 ORDER BY name", []any{int64(100)}},
		{"SELECT e.name, d.dname FROM emp e, dept d WHERE e.did = d.did AND d.loc = ? ORDER BY e.name",
			"SELECT e.name, d.dname FROM emp e, dept d WHERE e.did = d.did AND d.loc = 'Denver' ORDER BY e.name", []any{"Denver"}},
		{"SELECT d.loc, COUNT(*) FROM emp e, dept d WHERE e.did = d.did AND e.sal > ? GROUP BY d.loc ORDER BY d.loc",
			"SELECT d.loc, COUNT(*) FROM emp e, dept d WHERE e.did = d.did AND e.sal > 90 GROUP BY d.loc ORDER BY d.loc", []any{int64(90)}},
		{"SELECT name FROM emp WHERE did = $1 AND sal > $2 ORDER BY name",
			"SELECT name FROM emp WHERE did = 10 AND sal > 100 ORDER BY name", []any{int64(10), int64(100)}},
	}
	cacheOn := demoEngine(t, Options{Optimizer: SystemR})
	cacheOff := demoEngine(t, Options{Optimizer: SystemR, PlanCacheSize: -1})
	for _, c := range cases {
		want, err := cacheOn.Exec(c.literal)
		if err != nil {
			t.Fatalf("%s: %v", c.literal, err)
		}
		wantRows := exactRows(want)
		check := func(e *Engine, label string) {
			st, err := e.Prepare(c.param)
			if err != nil {
				t.Fatalf("[%s] prepare %s: %v", label, c.param, err)
			}
			for i := 0; i < 2; i++ { // second round hits the cache when enabled
				res, err := st.Exec(c.args...)
				if err != nil {
					t.Fatalf("[%s] %s: %v", label, c.param, err)
				}
				got := exactRows(res)
				if len(got) != len(wantRows) {
					t.Fatalf("[%s] %s: %v, want %v", label, c.param, got, wantRows)
				}
				for j := range got {
					if got[j] != wantRows[j] {
						t.Fatalf("[%s] %s row %d: %q, want %q", label, c.param, j, got[j], wantRows[j])
					}
				}
			}
		}
		check(cacheOn, "cache-on")
		check(cacheOff, "cache-off")
	}
	if s := cacheOff.PlanCacheStats(); s.Hits != 0 || s.Entries != 0 {
		t.Fatalf("disabled cache recorded hits: %+v", s)
	}
	if s := cacheOn.PlanCacheStats(); s.Hits == 0 {
		t.Fatalf("enabled cache never hit: %+v", s)
	}
}

func TestPreparedNullParameter(t *testing.T) {
	e := demoEngine(t, Options{Optimizer: SystemR})
	st, err := e.Prepare("SELECT name FROM emp WHERE sal > ? ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec(int64(100)); err != nil {
		t.Fatal(err)
	}
	entriesBefore := e.PlanCacheStats().Entries
	// NULL comparison is unknown for every row: zero rows, no error — and a
	// distinct cache entry (NULL's type signature differs).
	res, err := st.Exec(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("sal > NULL returned %d rows, want 0", len(res.Rows))
	}
	if s := e.PlanCacheStats(); s.Entries != entriesBefore+1 {
		t.Fatalf("NULL binding shared the non-NULL entry: %+v", s)
	}
	// Repeat NULL execution hits its own entry.
	hits := e.PlanCacheStats().Hits
	if _, err := st.Exec(nil); err != nil {
		t.Fatal(err)
	}
	if s := e.PlanCacheStats(); s.Hits != hits+1 {
		t.Fatalf("repeat NULL binding missed: %+v", s)
	}
}

func TestDDLAndAnalyzeInvalidatePlans(t *testing.T) {
	e := demoEngine(t, Options{Optimizer: SystemR})
	st, err := e.Prepare("SELECT name FROM emp WHERE did = ? ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	mustRows := func(wantNames int, args ...any) {
		t.Helper()
		res, err := st.Exec(args...)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != wantNames {
			t.Fatalf("Exec(%v): %d rows, want %d", args, len(res.Rows), wantNames)
		}
	}
	mustRows(2, int64(10)) // miss
	mustRows(2, int64(10)) // hit
	base := e.PlanCacheStats()

	// DDL bumps the catalog version: the cached diagram is dropped.
	v := e.CatalogVersion()
	e.MustExec("CREATE INDEX emp_sal ON emp (sal)")
	if e.CatalogVersion() != v+1 {
		t.Fatalf("CREATE INDEX did not bump the catalog version")
	}
	mustRows(2, int64(10))
	if s := e.PlanCacheStats(); s.Misses != base.Misses+1 {
		t.Fatalf("post-DDL execution did not re-optimize: %+v -> %+v", base, s)
	}

	// ANALYZE bumps too (statistics feed the plan choice).
	v = e.CatalogVersion()
	e.MustExec("ANALYZE")
	if e.CatalogVersion() != v+1 {
		t.Fatalf("ANALYZE did not bump the catalog version")
	}
	s1 := e.PlanCacheStats()
	mustRows(2, int64(10))
	if s := e.PlanCacheStats(); s.Misses != s1.Misses+1 {
		t.Fatalf("post-ANALYZE execution did not re-optimize: %+v -> %+v", s1, s)
	}

	// INSERT does not bump — cached plans stay correct and see the new row.
	v = e.CatalogVersion()
	e.MustExec("INSERT INTO emp VALUES (6, 'frank', 10, 99.0)")
	if e.CatalogVersion() != v {
		t.Fatalf("INSERT bumped the catalog version")
	}
	s2 := e.PlanCacheStats()
	mustRows(3, int64(10)) // alice, bob, frank — via the cached plan
	if s := e.PlanCacheStats(); s.Hits != s2.Hits+1 {
		t.Fatalf("post-INSERT execution missed the cache: %+v -> %+v", s2, s)
	}
}

func TestAdmissionTimeout(t *testing.T) {
	e := demoEngine(t, Options{
		Optimizer:            SystemR,
		MaxConcurrentQueries: 1,
		AdmissionTimeout:     30 * time.Millisecond,
	})
	entered := make(chan struct{})
	blocker := make(chan struct{})
	var once sync.Once
	e.RegisterPredicate("gate", 1.0, 0.5, func(args []any) bool {
		once.Do(func() { close(entered) })
		<-blocker
		return true
	})
	done := make(chan error, 1)
	go func() {
		_, err := e.Exec("SELECT name FROM emp WHERE gate(name)")
		done <- err
	}()
	<-entered
	// The slot is held: this query times out in the admission queue.
	if _, err := e.Exec("SELECT COUNT(*) FROM dept"); !errors.Is(err, ErrAdmissionTimeout) {
		t.Fatalf("queued query error = %v, want ErrAdmissionTimeout", err)
	}
	// A caller's context can end the wait earlier than the timeout.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ExecContext(ctx, "SELECT COUNT(*) FROM dept"); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query error = %v, want context.Canceled", err)
	}
	close(blocker)
	if err := <-done; err != nil {
		t.Fatalf("gated query failed: %v", err)
	}
	// Slot released: queries run again.
	if _, err := e.Exec("SELECT COUNT(*) FROM dept"); err != nil {
		t.Fatal(err)
	}
}

// TotalMemBudget chains every query account to a shared pool: queries still
// complete (degrading to spill) and results stay identical.
func TestTotalMemBudgetSharedPool(t *testing.T) {
	if testing.Short() {
		t.Skip("large fixture")
	}
	free := bigRandSchema(t, Options{Optimizer: SystemR}, 7)
	capped := bigRandSchema(t, Options{Optimizer: SystemR, TotalMemBudget: 16 << 10}, 7)
	q := "SELECT fk, COUNT(*), SUM(f) FROM r GROUP BY fk ORDER BY fk"
	want, err := free.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := capped.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	w, g := exactRows(want), exactRows(got)
	if len(w) != len(g) {
		t.Fatalf("row counts differ: %d vs %d", len(g), len(w))
	}
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("row %d differs under shared budget: %q vs %q", i, g[i], w[i])
		}
	}
	if got.Stats.Spills == 0 {
		t.Fatalf("16KiB shared budget did not force spilling: %+v", got.Stats)
	}
}

// Engine.Close during in-flight parallel queries must drain cleanly: running
// queries finish or fail with the typed error, late queries get the typed
// error, nothing panics or leaks.
func TestCloseDrainsInFlightQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("large fixture")
	}
	e := bigRandSchema(t, Options{Optimizer: SystemR, Parallelism: 4}, 3)
	q := "SELECT COUNT(*) FROM r WHERE a >= 0"
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := e.Exec(q); err != nil && !errors.Is(err, ErrPoolClosed) {
					t.Errorf("racing query error = %v, want nil or ErrPoolClosed", err)
					return
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	e.Close() // blocks until workers drain
	wg.Wait()
	// Late submitters get the typed error, not a panic.
	if _, err := e.Exec(q); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("post-Close parallel query error = %v, want ErrPoolClosed", err)
	}
}

func TestPrepareRejectsNonSelect(t *testing.T) {
	e := demoEngine(t, Options{Optimizer: SystemR})
	if _, err := e.Prepare("INSERT INTO emp VALUES (9, 'zed', 10, 1.0)"); err == nil {
		t.Fatal("Prepare(INSERT) succeeded")
	}
	if _, err := e.Prepare("SELECT name FROM emp WHERE sal > "); err == nil {
		t.Fatal("Prepare of unparsable text succeeded")
	}
	ref := demoEngine(t, Options{Optimizer: Reference})
	if _, err := ref.Prepare("SELECT name FROM emp"); err == nil {
		t.Fatal("Prepare in reference mode succeeded")
	}
}
