package queryopt

// storage_equivalence_test.go proves the disk-backed columnar segment store
// is invisible to query results: the same random query corpus, run against
// an in-memory engine and a disk-backed engine over identical data, must
// return bit-identical rows (floats compared as exact hex bits) at every
// parallelism degree, with zone-map pruning both on and off.

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/faultfs"
)

// canonRowsHex renders rows with floats as exact hexadecimal bit patterns,
// so any rounding introduced by the storage layer fails the comparison.
func canonRowsHex(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		var sb strings.Builder
		for j, v := range r {
			if j > 0 {
				sb.WriteByte('|')
			}
			switch t := v.(type) {
			case nil:
				sb.WriteString("NULL")
			case float64:
				sb.WriteString(strconv.FormatFloat(t, 'x', -1, 64))
			default:
				fmt.Fprint(&sb, t)
			}
		}
		out[i] = sb.String()
	}
	sort.Strings(out)
	return out
}

// TestDiskStorageEquivalence: random queries agree between memory and disk
// at parallelism 1, 4 and 8, with small segments so every query crosses
// many segment boundaries, and with pruning disabled as a control arm.
func TestDiskStorageEquivalence(t *testing.T) {
	const trials = 40
	for _, par := range []int{1, 4, 8} {
		for seed := int64(1); seed <= 2; seed++ {
			mem := randSchemaWith(t, Options{Optimizer: SystemR, Parallelism: par}, seed)
			dsk := randSchemaWith(t, Options{
				Optimizer: SystemR, Parallelism: par,
				StorageDir: t.TempDir(), SegmentRows: 32,
			}, seed)
			noPrune := randSchemaWith(t, Options{
				Optimizer: SystemR, Parallelism: par,
				StorageDir: t.TempDir(), SegmentRows: 32, DisableZoneMaps: true,
			}, seed)
			rng := rand.New(rand.NewSource(seed * 77))
			for trial := 0; trial < trials; trial++ {
				q := randQuery(rng)
				want, err := mem.Exec(q)
				if err != nil {
					t.Fatalf("par %d seed %d trial %d (mem): %v\nquery: %s", par, seed, trial, err, q)
				}
				base := canonRowsHex(want)
				for name, e := range map[string]*Engine{"disk": dsk, "disk-noprune": noPrune} {
					got, err := e.Exec(q)
					if err != nil {
						t.Fatalf("par %d seed %d trial %d (%s): %v\nquery: %s", par, seed, trial, name, err, q)
					}
					rows := canonRowsHex(got)
					if strings.Join(rows, ";") != strings.Join(base, ";") {
						t.Fatalf("par %d seed %d trial %d: %s differs from memory\nquery: %s\nmem (%d rows): %.500v\n%s (%d rows): %.500v\nplan:\n%s",
							par, seed, trial, name, q, len(base), base, name, len(rows), rows, got.Plan)
					}
				}
			}
			mem.Close()
			dsk.Close()
			noPrune.Close()
		}
	}
}

// TestDiskStorageOrderedEquivalence: ordered prefixes must match exactly
// (not as a multiset) between memory and disk.
func TestDiskStorageOrderedEquivalence(t *testing.T) {
	mem := randSchemaWith(t, Options{Optimizer: SystemR, Parallelism: 4}, 42)
	dsk := randSchemaWith(t, Options{
		Optimizer: SystemR, Parallelism: 4,
		StorageDir: t.TempDir(), SegmentRows: 32,
	}, 42)
	queries := []string{
		"SELECT x.pk FROM r x WHERE x.a > 5 ORDER BY x.pk LIMIT 7",
		"SELECT x.pk, y.pk FROM r x JOIN t y ON x.fk = y.pk ORDER BY x.pk DESC LIMIT 5",
		"SELECT x.a, COUNT(*), SUM(x.f) FROM r x WHERE x.f < 200 GROUP BY x.a ORDER BY x.a",
	}
	for _, q := range queries {
		want, err := mem.Exec(q)
		if err != nil {
			t.Fatalf("mem %s: %v", q, err)
		}
		got, err := dsk.Exec(q)
		if err != nil {
			t.Fatalf("disk %s: %v", q, err)
		}
		a := fmt.Sprint(want.Rows)
		b := fmt.Sprint(got.Rows)
		if a != b {
			t.Errorf("%s:\nmem:  %s\ndisk: %s", q, a, b)
		}
	}
}

// TestSegmentPruningCounters: a selective range over a clustered (sorted)
// key reads well under 10% of segments, an unselective one reads them all,
// and DisableZoneMaps reads everything while returning the same rows.
func TestSegmentPruningCounters(t *testing.T) {
	build := func(opts Options) *Engine {
		e := New(opts)
		// No index: the range predicate must be answered by a sequential
		// scan, so row elimination can only come from zone maps.
		e.MustExec(`CREATE TABLE m (k INT NOT NULL, v FLOAT)`)
		var rows [][]any
		for i := 0; i < 20000; i++ {
			rows = append(rows, []any{i, float64(i) / 3})
		}
		if err := e.LoadRows("m", rows); err != nil {
			t.Fatal(err)
		}
		e.MustExec("ANALYZE")
		return e
	}
	dsk := build(Options{StorageDir: t.TempDir(), SegmentRows: 512})
	defer dsk.Close()

	res, err := dsk.Exec("SELECT COUNT(*) FROM m WHERE k >= 100 AND k < 120")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 20 {
		t.Fatalf("selective count = %v, want 20", res.Rows[0][0])
	}
	read, pruned := res.Stats.SegmentsRead, res.Stats.SegmentsPruned
	total := read + pruned
	if total == 0 {
		t.Fatal("no segment accounting on a disk-backed scan")
	}
	if read*10 >= total {
		t.Fatalf("selective scan read %d of %d segments, want <10%%", read, total)
	}

	res, err = dsk.Exec("SELECT COUNT(*) FROM m")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 20000 {
		t.Fatalf("full count = %v", res.Rows[0][0])
	}
	if res.Stats.SegmentsPruned != 0 {
		t.Fatalf("unfiltered scan pruned %d segments", res.Stats.SegmentsPruned)
	}

	off := build(Options{StorageDir: t.TempDir(), SegmentRows: 512, DisableZoneMaps: true})
	defer off.Close()
	res, err = off.Exec("SELECT COUNT(*) FROM m WHERE k >= 100 AND k < 120")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 20 {
		t.Fatalf("no-prune count = %v, want 20", res.Rows[0][0])
	}
	if res.Stats.SegmentsPruned != 0 {
		t.Fatalf("DisableZoneMaps still pruned %d segments", res.Stats.SegmentsPruned)
	}
}

// TestExplainAnalyzeShowsSegments: the rendered plan carries the new
// segments_read / segments_pruned / bytes_read metrics on disk scans.
func TestExplainAnalyzeShowsSegments(t *testing.T) {
	// A 1-byte column cache keeps every read cold, so bytes_read is nonzero
	// even after ANALYZE warmed the segments once.
	e := New(Options{StorageDir: t.TempDir(), SegmentRows: 256, SegmentCacheBytes: 1})
	defer e.Close()
	e.MustExec(`CREATE TABLE m (k INT NOT NULL, v FLOAT)`)
	var rows [][]any
	for i := 0; i < 4000; i++ {
		rows = append(rows, []any{i, float64(i)})
	}
	if err := e.LoadRows("m", rows); err != nil {
		t.Fatal(err)
	}
	e.MustExec("ANALYZE")
	res, err := e.Exec("EXPLAIN ANALYZE SELECT COUNT(*) FROM m WHERE k < 300")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "segments_read=") || !strings.Contains(res.Plan, "segments_pruned=") {
		t.Fatalf("no segment metrics in plan:\n%s", res.Plan)
	}
	if !strings.Contains(res.Plan, "bytes_read=") {
		t.Fatalf("no bytes_read in plan:\n%s", res.Plan)
	}
}

// TestDiskEngineFaultsAndLeaks: injected segment-read failures surface as
// the typed error through every parallelism degree, the engine survives,
// and no goroutines leak across fault + close cycles.
func TestDiskEngineFaultsAndLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()
	boom := errors.New("segment device gone")
	for _, par := range []int{1, 4, 8} {
		// Tiny column cache: every segment read goes to disk, so the
		// injected faults are guaranteed to be hit.
		e := randSchemaWith(t, Options{
			Optimizer: SystemR, Parallelism: par,
			StorageDir: t.TempDir(), SegmentRows: 32, SegmentCacheBytes: 1,
		}, 3)
		q := "SELECT x.pk, y.a FROM r x JOIN t y ON x.fk = y.pk WHERE x.f > 10"
		e.faults = faultfs.New(faultfs.Rule{Op: "segment.open", After: 1, Err: boom})
		if _, err := e.Exec(q); !errors.Is(err, boom) {
			t.Fatalf("par %d: got %v, want injected segment error", par, err)
		}
		e.faults = faultfs.New(faultfs.Rule{Op: "segment.read", After: 2})
		if _, err := e.Exec(q); !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("par %d: got %v, want faultfs.ErrInjected", par, err)
		}
		e.faults = nil
		if _, err := e.Exec(q); err != nil {
			t.Fatalf("par %d: engine broken after injected fault: %v", par, err)
		}
		e.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
	}
}

// TestStaleStatsUseSegmentMetadata: after bulk growth without re-ANALYZE,
// the optimizer's row estimate follows the segment metadata instead of the
// stale catalog entry.
func TestStaleStatsUseSegmentMetadata(t *testing.T) {
	e := New(Options{StorageDir: t.TempDir(), SegmentRows: 128})
	defer e.Close()
	e.MustExec(`CREATE TABLE g (k INT NOT NULL)`)
	var rows [][]any
	for i := 0; i < 500; i++ {
		rows = append(rows, []any{i})
	}
	if err := e.LoadRows("g", rows); err != nil {
		t.Fatal(err)
	}
	e.MustExec("ANALYZE")
	// 10x growth, no re-ANALYZE: catalog says 500, segments say ~5500.
	rows = rows[:0]
	for i := 500; i < 5500; i++ {
		rows = append(rows, []any{i})
	}
	if err := e.LoadRows("g", rows); err != nil {
		t.Fatal(err)
	}
	res, err := e.Exec("EXPLAIN SELECT COUNT(*) FROM g")
	if err != nil {
		t.Fatal(err)
	}
	var plan strings.Builder
	for _, r := range res.Rows {
		fmt.Fprintln(&plan, r[0])
	}
	if !strings.Contains(plan.String(), "rows=5500") {
		t.Fatalf("scan estimate did not pick up segment metadata (want rows=5500):\nplan:\n%s", plan.String())
	}
}
