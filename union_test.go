package queryopt

// union_test.go covers UNION [ALL] and the GROUP BY CUBE/ROLLUP extensions
// (§7.4's decision-support constructs [24]) across all optimizers.

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

func salesEngine(t *testing.T, kind OptimizerKind) *Engine {
	t.Helper()
	e := New(Options{Optimizer: kind})
	e.MustExec("CREATE TABLE sales (region VARCHAR, product VARCHAR, qty INT)")
	rows := [][]any{
		{"east", "apple", 10},
		{"east", "apple", 5},
		{"east", "pear", 2},
		{"west", "apple", 7},
		{"west", "pear", 4},
		{"west", "pear", 1},
		{nil, "apple", 3}, // region unknown
	}
	if err := e.LoadRows("sales", rows); err != nil {
		t.Fatal(err)
	}
	e.MustExec("ANALYZE")
	return e
}

func rowsOf(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		var parts []string
		for _, v := range r {
			if v == nil {
				parts = append(parts, "·")
			} else {
				parts = append(parts, fmt.Sprint(v))
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func TestUnionAllAndDistinct(t *testing.T) {
	for _, kind := range []OptimizerKind{Reference, SystemR, Starburst, Cascades} {
		e := salesEngine(t, kind)
		res := e.MustExec("SELECT region FROM sales WHERE product = 'apple' UNION ALL SELECT region FROM sales WHERE product = 'pear'")
		if len(res.Rows) != 7 {
			t.Errorf("[%v] UNION ALL rows = %d, want 7", kind, len(res.Rows))
		}
		res = e.MustExec("SELECT region FROM sales WHERE product = 'apple' UNION SELECT region FROM sales WHERE product = 'pear'")
		if len(res.Rows) != 3 { // east, west, NULL
			t.Errorf("[%v] UNION rows = %d, want 3: %v", kind, len(res.Rows), rowsOf(res))
		}
		// Mixed-arm union with literals.
		res = e.MustExec("SELECT 1, 'a' UNION ALL SELECT 2, 'b' UNION SELECT 2, 'b'")
		if len(res.Rows) != 2 {
			t.Errorf("[%v] literal union rows = %d, want 2", kind, len(res.Rows))
		}
	}
}

func TestUnionOrderByLimit(t *testing.T) {
	e := salesEngine(t, SystemR)
	res := e.MustExec(`SELECT qty FROM sales WHERE region = 'east'
		UNION ALL SELECT qty FROM sales WHERE region = 'west'
		ORDER BY qty DESC LIMIT 3`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].(int64) != 10 || res.Rows[1][0].(int64) != 7 || res.Rows[2][0].(int64) != 5 {
		t.Errorf("top-3 via union = %v", res.Rows)
	}
}

func TestUnionErrors(t *testing.T) {
	e := salesEngine(t, SystemR)
	if _, err := e.Exec("SELECT region, qty FROM sales UNION SELECT region FROM sales"); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := e.Exec("SELECT qty FROM sales UNION SELECT qty FROM sales ORDER BY nope"); err == nil {
		t.Error("unknown union order column should fail")
	}
}

func TestRollup(t *testing.T) {
	for _, kind := range []OptimizerKind{Reference, SystemR, Cascades} {
		e := salesEngine(t, kind)
		res, err := e.Exec(`SELECT region, product, SUM(qty) FROM sales
			WHERE region IS NOT NULL
			GROUP BY ROLLUP (region, product)`)
		if err != nil {
			t.Fatalf("[%v] %v", kind, err)
		}
		got := rowsOf(res)
		want := []string{
			// detail level
			"east|apple|15", "east|pear|2", "west|apple|7", "west|pear|5",
			// per-region subtotal (product rolled away)
			"east|·|17", "west|·|12",
			// grand total
			"·|·|29",
		}
		sort.Strings(want)
		if strings.Join(got, ";") != strings.Join(want, ";") {
			t.Errorf("[%v] rollup rows:\ngot:  %v\nwant: %v", kind, got, want)
		}
	}
}

func TestCube(t *testing.T) {
	e := salesEngine(t, SystemR)
	res := e.MustExec(`SELECT region, product, SUM(qty), COUNT(*) FROM sales
		WHERE region IS NOT NULL
		GROUP BY CUBE (region, product)`)
	got := rowsOf(res)
	want := []string{
		"east|apple|15|2", "east|pear|2|1", "west|apple|7|1", "west|pear|5|2",
		"east|·|17|3", "west|·|12|3",
		"·|apple|22|3", "·|pear|7|3",
		"·|·|29|6",
	}
	sort.Strings(want)
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("cube rows:\ngot:  %v\nwant: %v", got, want)
	}
}

func TestCubeMatchesManualUnion(t *testing.T) {
	e := salesEngine(t, Cascades)
	cube := e.MustExec(`SELECT region, SUM(qty) FROM sales GROUP BY CUBE (region)`)
	manual := e.MustExec(`SELECT region, SUM(qty) FROM sales GROUP BY region
		UNION ALL SELECT NULL, SUM(qty) FROM sales`)
	if strings.Join(rowsOf(cube), ";") != strings.Join(rowsOf(manual), ";") {
		t.Errorf("cube: %v\nmanual: %v", rowsOf(cube), rowsOf(manual))
	}
}

func TestCubeGuards(t *testing.T) {
	e := salesEngine(t, SystemR)
	if _, err := e.Exec("SELECT SUM(qty) FROM sales GROUP BY CUBE ()"); err == nil {
		t.Error("empty CUBE should fail to parse or build")
	}
	if _, err := e.Exec(`SELECT region, product, qty, SUM(qty) FROM sales
		GROUP BY CUBE (region, product, qty, region, product, qty, region, product, qty)`); err == nil {
		t.Error("oversized CUBE should be rejected")
	}
}

func TestCubeExplainShowsUnions(t *testing.T) {
	e := salesEngine(t, SystemR)
	plan, err := e.Explain("SELECT region, SUM(qty) FROM sales GROUP BY CUBE (region)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "union-all") {
		t.Errorf("CUBE plan should contain a union:\n%s", plan)
	}
}
