package queryopt

// vectorized_equivalence_test.go extends the equivalence net to the columnar
// batch path: for the same random query corpus, engines running with
// vectorization enabled (the default) must return exactly what a
// vectorization-off engine returns — bit-identical floats, compared in exact
// hexadecimal form — at parallelism 1, 4 and 8. Operators without a typed
// kernel fall back to row mode transparently, so every corpus query must
// succeed regardless of which path each operator takes.

import (
	"math/rand"
	"strings"
	"testing"
)

// TestVectorizedQueryEquivalence: the row-mode engine is the baseline; the
// vectorized engines must agree on the multiset of rows (and on row order
// whenever the query has an ORDER BY).
func TestVectorizedQueryEquivalence(t *testing.T) {
	const trials = 25
	degrees := []int{1, 4, 8}
	for seed := int64(1); seed <= 2; seed++ {
		rowEng := bigRandSchema(t, Options{Optimizer: SystemR, Vectorize: VectorizeOff}, seed)
		vecEngines := make([]*Engine, len(degrees))
		for i, dg := range degrees {
			vecEngines[i] = bigRandSchema(t, Options{Optimizer: SystemR, Parallelism: dg}, seed)
		}
		rng := rand.New(rand.NewSource(seed * 77))
		for trial := 0; trial < trials; trial++ {
			q := randQuery(rng)
			res, err := rowEng.Exec(q)
			if err != nil {
				t.Fatalf("seed %d trial %d row-mode: %v\nquery: %s", seed, trial, err, q)
			}
			baseline := exactRows(res)
			ordered := strings.Contains(q, "ORDER BY")
			var orderedBaseline []string
			if ordered {
				for _, r := range res.Rows {
					orderedBaseline = append(orderedBaseline, exactRow(r))
				}
			}
			for i, dg := range degrees {
				vres, err := vecEngines[i].Exec(q)
				if err != nil {
					t.Fatalf("seed %d trial %d vectorized degree %d: %v\nquery: %s", seed, trial, dg, err, q)
				}
				got := exactRows(vres)
				if strings.Join(got, ";") != strings.Join(baseline, ";") {
					t.Fatalf("seed %d trial %d: vectorized degree %d disagrees with row mode\nquery: %s\nrow mode (%d rows): %.500v\ngot      (%d rows): %.500v\nplan:\n%s",
						seed, trial, dg, q, len(baseline), baseline, len(got), got, vres.Plan)
				}
				if ordered {
					var rows []string
					for _, r := range vres.Rows {
						rows = append(rows, exactRow(r))
					}
					if strings.Join(rows, ";") != strings.Join(orderedBaseline, ";") {
						t.Fatalf("seed %d trial %d: vectorized degree %d row order differs under ORDER BY\nquery: %s\nplan:\n%s",
							seed, trial, dg, q, vres.Plan)
					}
				}
			}
		}
	}
}

// TestVectorizedAnalyzeMarksNodes: EXPLAIN ANALYZE reports vectorized=true on
// operators that ran on the batch path, and never reports it when
// vectorization is off.
func TestVectorizedAnalyzeMarksNodes(t *testing.T) {
	on := bigRandSchema(t, Options{Optimizer: SystemR}, 3)
	q := "SELECT x.a, x.f FROM r x WHERE x.a < 10"
	_, an, err := on.QueryAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(an.Text, "vectorized=true") {
		t.Errorf("analyzed scan+filter not marked vectorized:\n%s", an.Text)
	}
	var marked int
	an.Root.Walk(func(n *NodeAnalysis) {
		if n.Vectorized {
			marked++
		}
	})
	if marked == 0 {
		t.Error("no NodeAnalysis has Vectorized set")
	}

	off := bigRandSchema(t, Options{Optimizer: SystemR, Vectorize: VectorizeOff}, 3)
	_, an, err = off.QueryAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(an.Text, "vectorized=true") {
		t.Errorf("VectorizeOff run still marked vectorized:\n%s", an.Text)
	}
	an.Root.Walk(func(n *NodeAnalysis) {
		if n.Vectorized {
			t.Errorf("VectorizeOff run set Vectorized on %s", n.Op)
		}
	})
}
